(* X2: IPC cost versus message size.

   Memory-based messaging's claim (section 2.2): "communication performance
   is limited primarily by the raw performance of the memory system, not
   the software overhead of copying, queuing and delivering messages, as
   arises with other micro-kernels."  So per-message cost should be a small
   constant (signal delivery) plus memory traffic the receiver would pay
   anyway — while copy-based IPC pays kernel crossings plus two copies of
   every word. *)

open Cachekernel
open Aklib

type point = { words : int; us_per_message : float }

(** Memory-based messaging: one-way message cost for [words]-word payloads
    over a channel (data written straight into shared memory; one bell
    write generates the signal). *)
let mbm_sweep ?(messages = 50) sizes =
  List.map
    (fun words ->
      if words > 1000 then invalid_arg "Ipc.mbm_sweep: message exceeds the data page";
      let inst = Setup.instance ~cpus:2 () in
      let ak = Setup.first_kernel inst in
      let mgr = ak.App_kernel.mgr in
      let sp_a = Setup.ok (Segment_mgr.create_space mgr) in
      let sp_b = Setup.ok (Segment_mgr.create_space mgr) in
      let ab = Channel.create_shared mgr ~name:"data" in
      let ba = Channel.create_shared mgr ~name:"ack" in
      let tid_a = ref None and tid_b = ref None in
      let oid_of r () =
        match !r with
        | Some id -> Thread_lib.oid_of ak.App_kernel.threads id
        | None -> None
      in
      let a_tx = Channel.attach mgr sp_a ab ~va:0x50000000 ~role:`Sender in
      let a_rx =
        Channel.attach mgr sp_a ba ~va:0x50800000 ~role:(`Receiver (oid_of tid_a))
      in
      let b_rx =
        Channel.attach mgr sp_b ab ~va:0x60000000 ~role:(`Receiver (oid_of tid_b))
      in
      let b_tx = Channel.attach mgr sp_b ba ~va:0x60800000 ~role:`Sender in
      (* bulk protocol: payload words fill the data page from offset 0; the
         bell word carries the count *)
      let send_bulk (ep : Channel.endpoint) n =
        for i = 0 to n - 1 do
          Hw.Exec.mem_write (ep.Channel.data_va + (4 * i)) i
        done;
        Hw.Exec.mem_write ep.Channel.bell_va n
      in
      let recv_bulk (ep : Channel.endpoint) =
        let rec await () =
          match Hw.Exec.trap Api.Ck_wait_signal with
          | Api.Ck_signal va when va >= ep.Channel.bell_va -> Hw.Exec.mem_read va
          | _ -> await ()
        in
        let n = await () in
        for i = 0 to n - 1 do
          ignore (Hw.Exec.mem_read (ep.Channel.data_va + (4 * i)))
        done;
        n
      in
      let elapsed = ref 0.0 in
      let body_a () =
        send_bulk a_tx 1;
        ignore (recv_bulk a_rx);
        let t0 = Hw.Exec.time_us () in
        for _ = 1 to messages do
          send_bulk a_tx words;
          ignore (recv_bulk a_rx)
        done;
        elapsed := Hw.Exec.time_us () -. t0
      in
      let body_b () =
        for _ = 0 to messages do
          ignore (recv_bulk b_rx);
          send_bulk b_tx 1 (* minimal ack *)
        done
      in
      tid_b :=
        Some
          (Setup.ok
             (Thread_lib.spawn ak.App_kernel.threads ~space_tag:sp_b.Segment_mgr.tag
                ~priority:12 ~affinity:1 (Hw.Exec.unit_body body_b)));
      tid_a :=
        Some
          (Setup.ok
             (Thread_lib.spawn ak.App_kernel.threads ~space_tag:sp_a.Segment_mgr.tag
                ~priority:12 ~affinity:0 (Hw.Exec.unit_body body_a)));
      ignore (Engine.run [| inst |]);
      (* subtract the fixed-size ack leg: measure the data leg only *)
      { words; us_per_message = !elapsed /. float_of_int messages })
    sizes

(** Copy-based micro-kernel IPC: synchronous call/reply through the kernel
    (two crossings and a copy per direction). *)
let microkernel_sweep ?(messages = 50) sizes =
  List.map
    (fun words ->
      let mk = Baseline.Microkernel.create () in
      let payload = List.init words Fun.id in
      let elapsed = ref 0.0 in
      let client () =
        ignore (Baseline.Microkernel.call ~port:1 [ 0 ]);
        let t0 = Hw.Exec.time_us () in
        for _ = 1 to messages do
          ignore (Baseline.Microkernel.call ~port:1 payload)
        done;
        elapsed := Hw.Exec.time_us () -. t0;
        Hw.Exec.Unit_payload
      in
      let server () =
        for _ = 0 to messages do
          Baseline.Microkernel.serve_one ~port:1 ~handle:(fun _req -> [ 0 ])
        done;
        Hw.Exec.Unit_payload
      in
      ignore (Baseline.Runtime.spawn mk.Baseline.Microkernel.rt server);
      ignore (Baseline.Runtime.spawn mk.Baseline.Microkernel.rt client);
      Baseline.Runtime.run mk.Baseline.Microkernel.rt;
      { words; us_per_message = !elapsed /. float_of_int messages })
    sizes

(** Monolithic pipes: same shape as the micro-kernel but one kernel, still
    copying through a kernel buffer. *)
let pipe_sweep ?(messages = 50) sizes =
  List.map
    (fun words ->
      let mono = Baseline.Monolithic.create () in
      let payload = List.init words Fun.id in
      let elapsed = ref 0.0 in
      let writer () =
        Baseline.Monolithic.pipe_write 1 [ 0 ];
        ignore (Baseline.Monolithic.pipe_read 2);
        let t0 = Hw.Exec.time_us () in
        for _ = 1 to messages do
          Baseline.Monolithic.pipe_write 1 payload;
          ignore (Baseline.Monolithic.pipe_read 2)
        done;
        elapsed := Hw.Exec.time_us () -. t0;
        Hw.Exec.Unit_payload
      in
      let reader () =
        for _ = 0 to messages do
          ignore (Baseline.Monolithic.pipe_read 1);
          Baseline.Monolithic.pipe_write 2 [ 0 ]
        done;
        Hw.Exec.Unit_payload
      in
      ignore (Baseline.Runtime.spawn mono.Baseline.Monolithic.rt reader);
      ignore (Baseline.Runtime.spawn mono.Baseline.Monolithic.rt writer);
      Baseline.Runtime.run mono.Baseline.Monolithic.rt;
      { words; us_per_message = !elapsed /. float_of_int messages })
    sizes
