lib/workload/contention.ml: Aklib Api App_kernel Array Baseline Cachekernel Config Engine Fun Hw Instance Kernel_obj List Segment_mgr Setup Srm Stats Thread_lib Thread_obj
