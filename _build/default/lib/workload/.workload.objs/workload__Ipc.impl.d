lib/workload/ipc.ml: Aklib Api App_kernel Baseline Cachekernel Channel Engine Fun Hw List Segment_mgr Setup Thread_lib
