lib/workload/setup.ml: Aklib Api Array Cachekernel Config Engine Fmt Fun Hw Instance List
