lib/workload/sweeps.ml: Aklib Api App_kernel Cachekernel Config Engine Frame_alloc Hw Instance List Option Region Segment Segment_mgr Setup Stats Thread_lib
