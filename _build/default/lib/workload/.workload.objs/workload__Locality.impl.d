lib/workload/locality.ml: Aklib Api Cachekernel Fmt Setup Sim_kernel
