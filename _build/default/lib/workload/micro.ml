(* Micro-benchmarks: Table 2 (basic object operations) and the section 5.3
   measurements (trap forwarding, signal delivery, page-fault handling).

   All times are *simulated* microseconds at 25 MHz; the interesting
   property versus the paper is the shape — ordering across object types,
   the load-vs-load-with-writeback gap, the optimized fault path — not
   absolute equality with the 68040 prototype. *)

open Cachekernel
open Aklib

type op_times = { load : float; load_wb : float; unload : float }

let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l))

(* Reduced capacities so filling a cache for the writeback case is cheap. *)
let small_config =
  {
    Config.default with
    Config.mapping_cache = 2048;
    thread_cache = 128;
    space_cache = 48;
    kernel_cache = 12;
  }

let null_spec inst name : Kernel_obj.spec =
  {
    Kernel_obj.name;
    handlers = Kernel_obj.null_handlers;
    cpu_percent = Array.make (Instance.n_cpus inst) 25;
    max_priority = 16;
    max_locked = 4;
  }

(* -- Table 2 rows -- *)

let mapping_times () =
  let inst = Setup.instance ~config:small_config () in
  let ak = Setup.first_kernel inst in
  let caller = App_kernel.oid ak in
  let space = Setup.ok (Api.load_space inst ~caller ~tag:1 ()) in
  let n = 256 in
  let load_one i =
    Setup.time_host inst (fun () ->
        Setup.ok
          (Api.load_mapping inst ~caller ~space
             (Api.mapping ~va:(0x40000000 + (i * Hw.Addr.page_size)) ~pfn:(512 + i) ())))
  in
  let loads = List.init n load_one in
  let unloads =
    List.init n (fun i ->
        Setup.time_host inst (fun () ->
            Setup.ok
              (Api.unload_mapping inst ~caller ~space
                 ~va:(0x40000000 + (i * Hw.Addr.page_size)))))
  in
  (* fill the cache so every further load displaces a victim *)
  let cap = small_config.Config.mapping_cache in
  for i = 0 to cap - 1 do
    Setup.ok
      (Api.load_mapping inst ~caller ~space
         (Api.mapping ~va:(0x50000000 + (i * Hw.Addr.page_size)) ~pfn:(1024 + i) ()))
  done;
  let loads_wb =
    List.init n (fun i ->
        Setup.time_host inst (fun () ->
            Setup.ok
              (Api.load_mapping inst ~caller ~space
                 (Api.mapping
                    ~va:(0x60000000 + (i * Hw.Addr.page_size))
                    ~pfn:(4096 + i) ()))))
  in
  { load = avg loads; load_wb = avg loads_wb; unload = avg unloads }

(* The optimized combined load-and-resume: the load itself plus the
   combined return path, versus the plain load plus a separate
   exception-complete trap (section 2.1). *)
let optimized_mapping_times () =
  let t = mapping_times () in
  let combined_return = Hw.Cost.us_of_cycles Config.c_combined_resume in
  let separate_return =
    Hw.Cost.us_of_cycles (Hw.Cost.trap_entry + Hw.Cost.exception_return)
  in
  {
    load = t.load +. combined_return;
    load_wb = t.load_wb +. combined_return;
    unload = t.unload +. separate_return;
    (* unload has no resume variant; report the plain path *)
  }

let thread_times () =
  let inst = Setup.instance ~config:small_config () in
  let ak = Setup.first_kernel inst in
  let caller = App_kernel.oid ak in
  let space = Setup.ok (Api.load_space inst ~caller ~tag:1 ()) in
  let body () = Hw.Exec.Unit_payload in
  let n = 64 in
  let oids = ref [] in
  let loads =
    List.init n (fun i ->
        Setup.time_host inst (fun () ->
            let oid =
              Setup.ok
                (Api.load_thread inst ~caller ~space ~priority:8 ~tag:i
                   ~start:(Thread_obj.Fresh body) ())
            in
            oids := oid :: !oids))
  in
  let unloads =
    List.map
      (fun oid ->
        Setup.time_host inst (fun () -> Setup.ok (Api.unload_thread inst ~caller oid)))
      !oids
  in
  let cap = small_config.Config.thread_cache in
  for i = 0 to cap - 1 do
    ignore
      (Api.load_thread inst ~caller ~space ~priority:8 ~tag:(1000 + i)
         ~start:(Thread_obj.Fresh body) ())
  done;
  let loads_wb =
    List.init n (fun i ->
        Setup.time_host inst (fun () ->
            Setup.ok
              (Api.load_thread inst ~caller ~space ~priority:8 ~tag:(5000 + i)
                 ~start:(Thread_obj.Fresh body) ())
            |> ignore))
  in
  { load = avg loads; load_wb = avg loads_wb; unload = avg unloads }

let space_times () =
  let inst = Setup.instance ~config:small_config () in
  let ak = Setup.first_kernel inst in
  let caller = App_kernel.oid ak in
  let n = 32 in
  let oids = ref [] in
  let loads =
    List.init n (fun i ->
        Setup.time_host inst (fun () ->
            oids := Setup.ok (Api.load_space inst ~caller ~tag:i ()) :: !oids))
  in
  let unloads =
    List.map
      (fun oid ->
        Setup.time_host inst (fun () -> Setup.ok (Api.unload_space inst ~caller oid)))
      !oids
  in
  let cap = small_config.Config.space_cache in
  for i = 0 to cap - 1 do
    ignore (Api.load_space inst ~caller ~tag:(1000 + i) ())
  done;
  let loads_wb =
    List.init n (fun i ->
        Setup.time_host inst (fun () ->
            ignore (Setup.ok (Api.load_space inst ~caller ~tag:(5000 + i) ()))))
  in
  { load = avg loads; load_wb = avg loads_wb; unload = avg unloads }

let kernel_times () =
  let inst = Setup.instance ~config:small_config () in
  let ak = Setup.first_kernel inst in
  let caller = App_kernel.oid ak in
  (* stay under the kernel-cache capacity (one slot is the first kernel) *)
  let n = small_config.Config.kernel_cache - 2 in
  let oids = ref [] in
  let loads =
    List.init n (fun i ->
        Setup.time_host inst (fun () ->
            oids :=
              Setup.ok
                (Api.load_kernel inst ~caller (null_spec inst (Printf.sprintf "k%d" i)))
              :: !oids))
  in
  let unloads =
    List.map
      (fun oid ->
        Setup.time_host inst (fun () -> Setup.ok (Api.unload_kernel inst ~caller oid)))
      !oids
  in
  let cap = small_config.Config.kernel_cache in
  for i = 0 to cap - 2 do
    (* -1: the first kernel occupies a locked slot *)
    ignore (Api.load_kernel inst ~caller (null_spec inst (Printf.sprintf "f%d" i)))
  done;
  let loads_wb =
    List.init n (fun i ->
        Setup.time_host inst (fun () ->
            ignore
              (Setup.ok
                 (Api.load_kernel inst ~caller (null_spec inst (Printf.sprintf "w%d" i))))))
  in
  { load = avg loads; load_wb = avg loads_wb; unload = avg unloads }

(** Table 2: all rows. *)
let table2 () =
  [
    ("Mappings", mapping_times ());
    ("(optimized)", optimized_mapping_times ());
    ("Threads", thread_times ());
    ("AddrSpaces", space_times ());
    ("Kernel", kernel_times ());
  ]

(* -- Section 5.3: trap forwarding (M1) -- *)

(** Per-call time of getpid through Cache Kernel trap forwarding to the
    UNIX emulator (paper: 37 us). *)
let ck_getpid_us ?(calls = 200) () =
  let inst = Setup.instance () in
  let groups = List.init (Instance.n_groups inst) Fun.id in
  let emu = Setup.ok (Unix_emu.Emulator.boot inst ~groups) in
  let per_call = ref 0.0 in
  let prog =
    Unix_emu.Syscall.program "getpid-loop" (fun () ->
        (* warm up the address space *)
        ignore (Unix_emu.Syscall.getpid ());
        let t0 = Hw.Exec.time_us () in
        for _ = 1 to calls do
          ignore (Unix_emu.Syscall.getpid ())
        done;
        let t1 = Hw.Exec.time_us () in
        per_call := (t1 -. t0) /. float_of_int calls;
        0)
  in
  ignore (Setup.ok (Unix_emu.Emulator.start_init emu prog));
  ignore (Engine.run [| inst |]);
  !per_call

(** Per-call time of getpid in the monolithic baseline (paper: Mach 2.5 at
    25 us on comparable hardware). *)
let monolithic_getpid_us ?(calls = 200) () =
  let mono = Baseline.Monolithic.create () in
  let per_call = ref 0.0 in
  let body () =
    ignore (Baseline.Monolithic.getpid ());
    let t0 = Hw.Exec.time_us () in
    for _ = 1 to calls do
      ignore (Baseline.Monolithic.getpid ())
    done;
    let t1 = Hw.Exec.time_us () in
    per_call := (t1 -. t0) /. float_of_int calls;
    Hw.Exec.Unit_payload
  in
  ignore (Baseline.Runtime.spawn mono.Baseline.Monolithic.rt body);
  Baseline.Runtime.run mono.Baseline.Monolithic.rt;
  !per_call

(* -- Section 5.3: signal delivery (M2) -- *)

type signal_times = { one_way_us : float; round_trip_us : float }

(** Cross-processor address-valued signal latency: two threads pinned to
    different CPUs ping-pong over a pair of channels (paper: 44 us deliver
    + 27 us return = 71 us).  Pass a config with [rtlb_enabled = false] for
    the ablation of the reverse-TLB fast path (section 4.1). *)
let signal_us ?(rounds = 100) ?(config = Config.default) () =
  let inst = Setup.instance ~config ~cpus:2 () in
  let ak = Setup.first_kernel inst in
  let mgr = ak.App_kernel.mgr in
  let sp_a = Setup.ok (Segment_mgr.create_space mgr) in
  let sp_b = Setup.ok (Segment_mgr.create_space mgr) in
  let ab = Channel.create_shared mgr ~name:"a->b" in
  let ba = Channel.create_shared mgr ~name:"b->a" in
  let tid_a = ref None and tid_b = ref None in
  let oid_of r () =
    match !r with Some id -> Thread_lib.oid_of ak.App_kernel.threads id | None -> None
  in
  let a_tx = Channel.attach mgr sp_a ab ~va:0x50000000 ~role:`Sender in
  let a_rx = Channel.attach mgr sp_a ba ~va:0x50800000 ~role:(`Receiver (oid_of tid_a)) in
  let b_rx = Channel.attach mgr sp_b ab ~va:0x60000000 ~role:(`Receiver (oid_of tid_b)) in
  let b_tx = Channel.attach mgr sp_b ba ~va:0x60800000 ~role:`Sender in
  let elapsed = ref 0.0 in
  let body_a () =
    (* warm-up exchange loads all the mappings *)
    Channel.send a_tx ~slot:0 [ 0 ];
    ignore (Channel.recv a_rx);
    let t0 = Hw.Exec.time_us () in
    for i = 1 to rounds do
      Channel.send a_tx ~slot:0 [ i ];
      ignore (Channel.recv a_rx)
    done;
    elapsed := Hw.Exec.time_us () -. t0
  in
  let body_b () =
    let rec loop n =
      if n >= 0 then begin
        ignore (Channel.recv b_rx);
        Channel.send b_tx ~slot:0 [ n ];
        loop (n - 1)
      end
    in
    loop rounds
  in
  tid_b :=
    Some
      (Setup.ok
         (Thread_lib.spawn ak.App_kernel.threads ~space_tag:sp_b.Segment_mgr.tag
            ~priority:12 ~affinity:1 (Hw.Exec.unit_body body_b)));
  tid_a :=
    Some
      (Setup.ok
         (Thread_lib.spawn ak.App_kernel.threads ~space_tag:sp_a.Segment_mgr.tag
            ~priority:12 ~affinity:0 (Hw.Exec.unit_body body_a)));
  ignore (Engine.run [| inst |]);
  let round_trip = !elapsed /. float_of_int rounds in
  { one_way_us = round_trip /. 2.0; round_trip_us = round_trip }

(* -- Section 5.3: page-fault handling (M3) -- *)

type fault_times = { total_us : float; transfer_us : float; load_resume_us : float }

(** Soft-fault cost: the page is resident, only the mapping is missing —
    transfer to the application kernel plus the optimized load-and-resume
    (paper: 32 + 67 = 99 us).  The trace timestamps split the phases. *)
let fault_us ?(faults = 100) () =
  let inst = Setup.instance () in
  let ak = Setup.first_kernel inst in
  let mgr = ak.App_kernel.mgr in
  let vsp = Setup.ok (Segment_mgr.create_space mgr) in
  let seg = Segment_mgr.create_segment mgr ~name:"soft" ~pages:(faults + 1) in
  let base = 0x40000000 in
  Segment_mgr.attach_region mgr vsp
    (Region.v ~va_start:base ~pages:(faults + 1) ~segment:seg ~seg_offset:0 ());
  (* make every page resident up front so faults are mapping-only *)
  for page = 0 to faults do
    let pfn = Option.get (Frame_alloc.alloc ak.App_kernel.frames) in
    Aklib.Segment.set_state seg page
      (Aklib.Segment.In_memory
         { Aklib.Segment.pfn; dirty = false; backing = None; mappers = []; cow_pending = None })
  done;
  Trace.enable inst.Instance.trace;
  let body () =
    for i = 0 to faults do
      ignore (Hw.Exec.mem_read (base + (i * Hw.Addr.page_size)))
    done
  in
  ignore
    (Setup.ok
       (Thread_lib.spawn ak.App_kernel.threads ~space_tag:vsp.Segment_mgr.tag ~priority:8
          (Hw.Exec.unit_body body)));
  ignore (Engine.run [| inst |]);
  (* fold the trace: fault-trap -> handler-running = transfer; handler ->
     thread-resumed = handler + load + resume *)
  let entries = Trace.entries inst.Instance.trace in
  let transfer = ref [] and serve = ref [] and total = ref [] in
  (* state machine over one fault's event sequence:
     Fault_trap(t0) -> Handler_running(t1) -> ... -> Thread_resumed(t3) *)
  let t0 = ref None and t1 = ref None in
  List.iter
    (fun { Trace.time; event } ->
      match event with
      | Trace.Fault_trap _ ->
        t0 := Some time;
        t1 := None
      | Trace.Handler_running _ ->
        (match !t0 with
        | Some f0 -> transfer := Hw.Cost.us_of_cycles (time - f0) :: !transfer
        | None -> ());
        t1 := Some time
      | Trace.Thread_resumed _ ->
        (match !t1 with
        | Some h1 -> serve := Hw.Cost.us_of_cycles (time - h1) :: !serve
        | None -> ());
        (match !t0 with
        | Some f0 -> total := Hw.Cost.us_of_cycles (time - f0) :: !total
        | None -> ());
        t0 := None;
        t1 := None
      | _ -> ())
    entries;
  { total_us = avg !total; transfer_us = avg !transfer; load_resume_us = avg !serve }
