(* Resource-contention experiments: quota enforcement (R1), time-slicing
   fairness (R2) and descriptor exhaustion (X1). *)

open Cachekernel
open Aklib

(* -- R1: processor-percentage enforcement (section 4.3) -- *)

type quota_result = {
  rogue_percent : int; (* the rogue's allocation *)
  rogue_share : float; (* what it actually achieved *)
  victim_share : float;
  demotions : bool; (* did the Cache Kernel demote the rogue? *)
}

(** One well-behaved kernel and one rogue compute-bound kernel share a
    processor; the rogue is allocated [rogue_percent] and tries to take
    everything.  The Cache Kernel's accounting must cap it near its
    allocation ("prevents a rogue application kernel ... from disrupting
    the execution of a UNIX emulator running on the same configuration"). *)
let quota_enforcement ?(rogue_percent = 30) ?(rogue_priority = 10) ?(run_ms = 400) () =
  let inst = Setup.instance ~cpus:1 () in
  let srm = Setup.ok (Srm.Manager.boot inst ()) in
  let spin name percent priority =
    let prep, spec = App_kernel.prepare inst ~name ~cpu_percent:percent () in
    let l =
      Setup.ok
        (Srm.Manager.launch srm (prep, spec) ~group_count:4 ~cpu_percent:percent ())
    in
    let body () =
      let rec loop () =
        Hw.Exec.compute 2000;
        ignore (Hw.Exec.trap Api.Ck_yield);
        loop ()
      in
      loop ()
    in
    ignore (Setup.ok (App_kernel.spawn_internal prep ~priority (Hw.Exec.unit_body body)));
    (prep, l)
  in
  let victim, _ = spin "victim" (100 - rogue_percent) 10 in
  let rogue, _ = spin "rogue" rogue_percent rogue_priority in
  ignore (Engine.run ~until_us:(float_of_int run_ms *. 1000.0) [| inst |]);
  let consumed ak =
    let total = ref 0 in
    Thread_lib.iter ak.App_kernel.threads (fun e ->
        match Thread_lib.oid_of ak.App_kernel.threads e.Thread_lib.id with
        | Some oid -> (
          match Instance.find_thread inst oid with
          | Some th -> total := !total + th.Thread_obj.consumed
          | None -> ())
        | None -> ());
    float_of_int !total
  in
  let cv = consumed victim and cr = consumed rogue in
  let busy = cv +. cr in
  let demoted =
    match Instance.find_kernel inst (App_kernel.oid rogue) with
    | Some k -> Array.exists Fun.id k.Kernel_obj.demoted
    | None -> false
  in
  {
    rogue_percent;
    rogue_share = (if busy > 0.0 then cr /. busy else 0.0);
    victim_share = (if busy > 0.0 then cv /. busy else 0.0);
    demotions = demoted;
  }

(* -- R2: time-sliced scheduling within one priority (section 4.3) -- *)

type fairness_result = {
  n : int;
  shares : float list; (* fraction of total CPU each thread obtained *)
  max_imbalance : float; (* max share / ideal share *)
  preemptions : int;
}

(** [n] same-priority compute-bound threads on one processor: time slicing
    must hand each a roughly equal share ("a real-time thread cannot
    excessively interfere with a real-time thread from another application
    executing at the same priority"). *)
let timeslice_fairness ?(n = 4) ?(run_ms = 200) () =
  let inst = Setup.instance ~cpus:1 () in
  let ak = Setup.first_kernel inst in
  let vsp = Setup.ok (Segment_mgr.create_space ak.App_kernel.mgr) in
  let body () =
    let rec loop () =
      Hw.Exec.compute 5000;
      loop ()
    in
    loop ()
  in
  let tids =
    List.init n (fun _ ->
        Setup.ok
          (Thread_lib.spawn ak.App_kernel.threads ~space_tag:vsp.Segment_mgr.tag
             ~priority:10 (Hw.Exec.unit_body body)))
  in
  ignore (Engine.run ~until_us:(float_of_int run_ms *. 1000.0) [| inst |]);
  let consumed =
    List.map
      (fun id ->
        match Thread_lib.oid_of ak.App_kernel.threads id with
        | Some oid -> (
          match Instance.find_thread inst oid with
          | Some th -> float_of_int th.Thread_obj.consumed
          | None -> 0.0)
        | None -> 0.0)
      tids
  in
  let total = List.fold_left ( +. ) 0.0 consumed in
  let shares = List.map (fun c -> if total > 0.0 then c /. total else 0.0) consumed in
  let ideal = 1.0 /. float_of_int n in
  {
    n;
    shares;
    max_imbalance = List.fold_left (fun acc s -> max acc (s /. ideal)) 0.0 shares;
    preemptions = inst.Instance.stats.Stats.preemptions;
  }

(* -- X1: descriptor exhaustion (section 7) -- *)

type exhaustion_result = {
  requested : int;
  capacity : int;
  loaded_ok : int;
  hard_errors : int;
  writebacks : int;
}

(** Load twice the thread-cache capacity of threads through the Cache
    Kernel: every load succeeds; earlier threads are written back to make
    room.  "The Cache Kernel always allows more objects to be loaded,
    writing back other objects to make space if necessary." *)
let ck_thread_overload ?(capacity = 32) () =
  let config = { Config.default with Config.thread_cache = capacity } in
  let inst = Setup.instance ~config ~cpus:1 () in
  let ak = Setup.first_kernel inst in
  let caller = App_kernel.oid ak in
  let space = Setup.ok (Api.load_space inst ~caller ~tag:99 ()) in
  let n = 2 * capacity in
  let okc = ref 0 and errc = ref 0 in
  for i = 1 to n do
    match
      Api.load_thread inst ~caller ~space ~priority:8 ~tag:i
        ~start:(Thread_obj.Fresh (fun () -> Hw.Exec.Unit_payload))
        ()
    with
    | Ok _ -> incr okc
    | Error _ -> incr errc
  done;
  {
    requested = n;
    capacity;
    loaded_ok = !okc;
    hard_errors = !errc;
    writebacks = inst.Instance.stats.Stats.threads.Stats.writebacks;
  }

(** The monolithic comparison: forking past NPROC returns hard EAGAIN. *)
let monolithic_overload ?(nproc = 32) () =
  let mono = Baseline.Monolithic.create ~nproc () in
  let n = 2 * nproc in
  let okc = ref 0 and errc = ref 0 in
  let body () =
    for _ = 1 to n do
      match Baseline.Monolithic.fork () with
      | Ok _ -> incr okc
      | Error `Again -> incr errc
    done;
    Hw.Exec.Unit_payload
  in
  ignore (Baseline.Runtime.spawn mono.Baseline.Monolithic.rt body);
  Baseline.Runtime.run mono.Baseline.Monolithic.rt;
  {
    requested = n;
    capacity = nproc;
    loaded_ok = !okc;
    hard_errors = !errc;
    writebacks = 0;
  }
