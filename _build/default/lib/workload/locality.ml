(* C3: the MP3D page-locality experiment (section 5.2).

   "We measured up to a 25 percent degradation in performance in the MP3D
   program from processors accessing particles scattered across too many
   pages.  The solution with MP3D was to enforce page locality as well as
   cache line locality by copying particles." *)

open Cachekernel

type comparison = {
  scattered : Sim_kernel.Mp3d.report;
  clustered : Sim_kernel.Mp3d.report;
  degradation_percent : float; (* scattered slowdown relative to clustered *)
}

let mp3d_compare ?(particles = 16384) ?(cells = 64) ?(steps = 3) () =
  let run placement =
    let inst = Setup.instance ~cpus:4 () in
    let ak = Setup.first_kernel inst in
    let sim =
      match Sim_kernel.Mp3d.create ak ~particles ~cells ~placement () with
      | Ok s -> s
      | Error e -> Fmt.failwith "mp3d: %a" Api.pp_error e
    in
    Sim_kernel.Mp3d.run sim ~steps ()
  in
  let scattered = run Sim_kernel.Mp3d.Scattered in
  let clustered = run Sim_kernel.Mp3d.Clustered in
  let degradation =
    100.0
    *. (scattered.Sim_kernel.Mp3d.us_per_step -. clustered.Sim_kernel.Mp3d.us_per_step)
    /. clustered.Sim_kernel.Mp3d.us_per_step
  in
  { scattered; clustered; degradation_percent = degradation }

(** Application-controlled paging: run MP3D with a constrained frame pool,
    once with the default FIFO replacement and once with the simulation
    kernel's locality-aware victim policy installed; report page-in counts
    (the application avoids "random page faults" by paging out what it is
    not about to process). *)
type paging_comparison = {
  fifo_page_ins : int;
  app_policy_page_ins : int;
  fifo_us : float;
  app_policy_us : float;
}

let app_paging_compare ?(particles = 8192) ?(cells = 32) ?(steps = 2) ?(frames = 48) () =
  let run ~use_app_policy =
    let inst = Setup.instance ~cpus:2 () in
    let ak = Setup.first_kernel inst in
    let sim =
      match
        Sim_kernel.Mp3d.create ak ~particles ~cells ~placement:Sim_kernel.Mp3d.Clustered ()
      with
      | Ok s -> s
      | Error e -> Fmt.failwith "mp3d: %a" Api.pp_error e
    in
    if use_app_policy then Sim_kernel.Mp3d.install_locality_aware_eviction sim;
    (* constrain the frame pool after setup so paging is forced *)
    let avail = Aklib.Frame_alloc.available ak.Aklib.App_kernel.frames in
    if avail > frames then
      ignore (Aklib.Frame_alloc.take ak.Aklib.App_kernel.frames (avail - frames));
    let r = Sim_kernel.Mp3d.run sim ~steps ~workers:2 () in
    (r.Sim_kernel.Mp3d.page_ins, r.Sim_kernel.Mp3d.elapsed_us)
  in
  let fifo_page_ins, fifo_us = run ~use_app_policy:false in
  let app_policy_page_ins, app_policy_us = run ~use_app_policy:true in
  { fifo_page_ins; app_policy_page_ins; fifo_us; app_policy_us }
