(* Execution contexts: simulated instruction streams as effectful OCaml code.

   A simulated thread body is an OCaml function that performs effects for
   everything with an architectural cost or kernel involvement: burning
   compute cycles, reading/writing virtual memory, and executing a trap
   instruction.  The engine (in the Cache Kernel or a baseline kernel)
   handles those effects, charges simulated time, performs address
   translation, and may suspend the thread at any effect point — which gives
   preemption, page-fault-and-retry, and writeback of partially executed
   threads, with the suspended one-shot continuation playing the role of the
   saved register file.

   Trap payloads are an extensible variant so that the hardware layer does
   not depend on any kernel's call vocabulary. *)

type payload = ..
(** Trap operands and results; each kernel extends this with its calls. *)

type payload += Unit_payload | Int_payload of int

type _ Effect.t +=
  | Compute : Cost.cycles -> unit Effect.t  (** execute [n] cycles of pure computation *)
  | Mem_read : int -> int Effect.t  (** load the word at a virtual address *)
  | Mem_write : int * int -> unit Effect.t  (** store a word at a virtual address *)
  | Trap : payload -> payload Effect.t  (** trap instruction: enter the kernel *)
  | Get_time : float Effect.t  (** read the (simulated) clock, in microseconds *)

(* Convenience wrappers so thread bodies read naturally. *)

let compute n = Effect.perform (Compute n)
let mem_read va = Effect.perform (Mem_read va)
let mem_write va v = Effect.perform (Mem_write (va, v))
let trap p = Effect.perform (Trap p)
let time_us () = Effect.perform Get_time

type status =
  | Done of payload
      (** the computation finished; handler frames return their result here *)
  | Failed of exn  (** the computation raised *)
  | On_compute of Cost.cycles * (unit, status) Effect.Deep.continuation
  | On_read of int * (int, status) Effect.Deep.continuation
  | On_write of int * int * (unit, status) Effect.Deep.continuation
  | On_trap of payload * (payload, status) Effect.Deep.continuation
  | On_time of (float, status) Effect.Deep.continuation

let pp_status ppf = function
  | Done _ -> Fmt.string ppf "done"
  | Failed e -> Fmt.pf ppf "failed(%s)" (Printexc.to_string e)
  | On_compute (n, _) -> Fmt.pf ppf "compute(%d)" n
  | On_read (va, _) -> Fmt.pf ppf "read(%a)" Addr.pp_addr va
  | On_write (va, _, _) -> Fmt.pf ppf "write(%a)" Addr.pp_addr va
  | On_trap _ -> Fmt.string ppf "trap"
  | On_time _ -> Fmt.string ppf "get-time"

(** Start running [body] until its first effect (or completion). *)
let start (body : unit -> payload) : status =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun p -> Done p);
      exnc = (fun e -> Failed e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Compute n ->
            Some (fun (k : (a, status) continuation) -> On_compute (n, k))
          | Mem_read va -> Some (fun (k : (a, status) continuation) -> On_read (va, k))
          | Mem_write (va, v) ->
            Some (fun (k : (a, status) continuation) -> On_write (va, v, k))
          | Trap p -> Some (fun (k : (a, status) continuation) -> On_trap (p, k))
          | Get_time -> Some (fun (k : (a, status) continuation) -> On_time (k))
          | _ -> None);
    }

(** A body that performs side effects and returns no useful value. *)
let unit_body (f : unit -> unit) : unit -> payload =
 fun () ->
  f ();
  Unit_payload
