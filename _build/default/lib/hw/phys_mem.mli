(** Physical memory of one MPM: lazily allocated 4 KB frames holding
    32-bit little-endian words. *)

type t

val create : size:int -> t
(** [create ~size] with [size] a positive multiple of the page size. *)

val size : t -> int
val pages : t -> int

val valid : t -> int -> bool
(** Does the physical address fall inside memory? *)

val read_word : t -> int -> int
(** Read the word at a word-aligned physical address. *)

val write_word : t -> int -> int -> unit

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val read_bytes : t -> int -> int -> Bytes.t
(** DMA-style bulk read; may cross page boundaries. *)

val write_bytes : t -> int -> Bytes.t -> unit

val zero_page : t -> int -> unit
(** Zero a page frame. *)

val copy_page : t -> src:int -> dst:int -> unit
(** Copy one page frame to another (deferred-copy completion). *)
