(** Address arithmetic for the simulated 32-bit machine: 4 KB pages,
    32-byte cache lines, and the 128-page "page groups" in which the
    system resource manager allocates physical memory (section 4.3). *)

val page_shift : int
val page_size : int
val word_size : int
val pages_per_group : int
val group_size : int
val cache_line_size : int

val page_of : int -> int
(** Virtual or physical page number of an address. *)

val offset_of : int -> int
(** Byte offset within the page. *)

val page_base : int -> int
(** Base address of the page containing the address. *)

val group_of_page : int -> int
(** Page-group index of a page frame number. *)

val group_of_addr : int -> int
val first_page_of_group : int -> int

val addr_of_page : int -> int
(** Address of the first byte of a page frame. *)

val round_up_page : int -> int
val word_aligned : int -> bool
val pp_addr : int Fmt.t
