(* One processor of an MPM: local time, TLB, reverse TLB and counters.

   Each CPU has its own local clock so the engine can interleave processors
   at effect granularity; the MPM clock is the maximum of its CPUs. *)

type t = {
  id : int;
  tlb : Tlb.t;
  rtlb : Rtlb.t;
  mutable local_time : Cost.cycles;
  mutable busy_cycles : Cost.cycles;
  mutable idle_cycles : Cost.cycles;
  mutable switches : int; (* context switches performed *)
}

let create ~id =
  {
    id;
    tlb = Tlb.create ();
    rtlb = Rtlb.create ();
    local_time = 0;
    busy_cycles = 0;
    idle_cycles = 0;
    switches = 0;
  }

(** Charge [c] cycles of useful work on this CPU. *)
let charge t c =
  assert (c >= 0);
  t.local_time <- t.local_time + c;
  t.busy_cycles <- t.busy_cycles + c

(** Advance the CPU's clock to [time], accounting the gap as idle. *)
let idle_until t time =
  if time > t.local_time then begin
    t.idle_cycles <- t.idle_cycles + (time - t.local_time);
    t.local_time <- time
  end

let utilisation t =
  let total = t.busy_cycles + t.idle_cycles in
  if total = 0 then 0.0 else float_of_int t.busy_cycles /. float_of_int total

let pp ppf t =
  Fmt.pf ppf "cpu%d@%.1fus (busy %.1fus, idle %.1fus)" t.id
    (Cost.us_of_cycles t.local_time)
    (Cost.us_of_cycles t.busy_cycles)
    (Cost.us_of_cycles t.idle_cycles)
