(** Execution contexts: simulated instruction streams as effectful OCaml
    code.

    A thread body performs effects for everything with an architectural
    cost or kernel involvement — compute cycles, virtual-memory accesses,
    trap instructions.  The engine handles the effects, charges simulated
    time, and may suspend the computation at any effect point; the
    suspended one-shot continuation plays the role of the thread's saved
    register file. *)

type payload = ..
(** Trap operands and results; each kernel extends this with its calls. *)

type payload += Unit_payload | Int_payload of int

type _ Effect.t +=
  | Compute : Cost.cycles -> unit Effect.t
  | Mem_read : int -> int Effect.t
  | Mem_write : int * int -> unit Effect.t
  | Trap : payload -> payload Effect.t
  | Get_time : float Effect.t

val compute : Cost.cycles -> unit
(** Execute [n] cycles of pure computation. *)

val mem_read : int -> int
(** Load the word at a virtual address (may fault; the access retries
    transparently after the fault is served). *)

val mem_write : int -> int -> unit
(** Store a word at a virtual address. *)

val trap : payload -> payload
(** Execute a trap instruction: Cache Kernel calls are served directly;
    anything else is forwarded to the owning application kernel. *)

val time_us : unit -> float
(** Read the simulated clock, in microseconds. *)

(** A paused computation: the continuation is one-shot and is resumed by
    the engine when the effect's outcome is known. *)
type status =
  | Done of payload
  | Failed of exn
  | On_compute of Cost.cycles * (unit, status) Effect.Deep.continuation
  | On_read of int * (int, status) Effect.Deep.continuation
  | On_write of int * int * (unit, status) Effect.Deep.continuation
  | On_trap of payload * (payload, status) Effect.Deep.continuation
  | On_time of (float, status) Effect.Deep.continuation

val pp_status : status Fmt.t

val start : (unit -> payload) -> status
(** Run [body] until its first effect (or completion). *)

val unit_body : (unit -> unit) -> unit -> payload
(** Wrap a side-effecting body that returns no useful value. *)
