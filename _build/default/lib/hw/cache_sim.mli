(** Statistics model of the MPM's shared second-level cache (4-8 MB,
    32-byte lines): a direct-mapped tag array tracking hits, misses and
    message-mode updates; contents live in {!Phys_mem}. *)

type t

val create : ?size_bytes:int -> ?line_size:int -> unit -> t
val hits : t -> int
val misses : t -> int
val message_updates : t -> int
val reset_stats : t -> unit

val access : t -> int -> [ `Hit | `Miss ]
(** Access the line containing a physical address. *)

val message_write : t -> int -> [ `Hit | `Miss ]
(** A write to a message-mode line: updated in place without ownership,
    per ParaDiGM's message-oriented consistency (section 2.2). *)

val flush_page : t -> pfn:int -> unit
