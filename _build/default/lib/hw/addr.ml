(* Address arithmetic for the simulated 32-bit machine.

   The paper's prototype uses 4 KB pages and allocates physical memory to
   application kernels in "page groups" of 128 contiguous pages (512 KB),
   aligned modulo the group size (section 4.3). *)

let page_shift = 12
let page_size = 1 lsl page_shift
let word_size = 4
let pages_per_group = 128
let group_size = pages_per_group * page_size
let cache_line_size = 32

(** Virtual or physical page number of an address. *)
let page_of addr = addr lsr page_shift

(** Byte offset within the page of [addr]. *)
let offset_of addr = addr land (page_size - 1)

(** Base address of the page containing [addr]. *)
let page_base addr = addr land lnot (page_size - 1)

(** Page-group index of a page frame number. *)
let group_of_page pfn = pfn / pages_per_group

(** Page-group index of a physical address. *)
let group_of_addr paddr = group_of_page (page_of paddr)

(** First page frame number of a page group. *)
let first_page_of_group g = g * pages_per_group

(** Address of the first byte of page frame [pfn]. *)
let addr_of_page pfn = pfn lsl page_shift

(** Round [n] up to a multiple of the page size. *)
let round_up_page n = (n + page_size - 1) land lnot (page_size - 1)

(** True if [addr] is word-aligned. *)
let word_aligned addr = addr land (word_size - 1) = 0

let pp_addr ppf a = Fmt.pf ppf "0x%x" a
