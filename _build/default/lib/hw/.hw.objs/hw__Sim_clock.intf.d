lib/hw/sim_clock.mli: Cost Fmt
