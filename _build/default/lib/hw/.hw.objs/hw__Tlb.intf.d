lib/hw/tlb.mli: Page_table
