lib/hw/cost.ml: Float
