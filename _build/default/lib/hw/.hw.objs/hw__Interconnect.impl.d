lib/hw/interconnect.ml: Bytes Cost List
