lib/hw/page_table.ml: Addr Array Fmt List Option
