lib/hw/exec.ml: Addr Cost Effect Fmt Printexc
