lib/hw/addr.mli: Fmt
