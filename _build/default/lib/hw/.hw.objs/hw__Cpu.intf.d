lib/hw/cpu.mli: Cost Fmt Rtlb Tlb
