lib/hw/mmu.ml: Addr Cost Fmt Page_table Tlb
