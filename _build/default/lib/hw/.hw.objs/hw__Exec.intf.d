lib/hw/exec.mli: Cost Effect Fmt
