lib/hw/cache_sim.mli:
