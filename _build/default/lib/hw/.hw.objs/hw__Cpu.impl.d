lib/hw/cpu.ml: Cost Fmt Rtlb Tlb
