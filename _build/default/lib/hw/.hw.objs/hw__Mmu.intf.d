lib/hw/mmu.mli: Cost Fmt Page_table Tlb
