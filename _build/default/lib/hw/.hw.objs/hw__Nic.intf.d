lib/hw/nic.mli: Bytes Cost Event_queue Interconnect Phys_mem
