lib/hw/disk.mli: Bytes Cost Event_queue
