lib/hw/cache_sim.ml: Addr Array
