lib/hw/rtlb.mli:
