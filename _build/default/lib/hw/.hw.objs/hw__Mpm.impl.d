lib/hw/mpm.ml: Array Cache_sim Cpu Event_queue Phys_mem
