lib/hw/tlb.ml: Array Page_table
