lib/hw/addr.ml: Fmt
