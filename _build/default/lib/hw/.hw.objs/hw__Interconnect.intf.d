lib/hw/interconnect.mli: Bytes Cost
