lib/hw/nic.ml: Cost Event_queue Interconnect Phys_mem
