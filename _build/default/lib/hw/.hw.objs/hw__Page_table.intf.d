lib/hw/page_table.mli: Fmt
