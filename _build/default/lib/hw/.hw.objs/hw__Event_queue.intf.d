lib/hw/event_queue.mli: Cost
