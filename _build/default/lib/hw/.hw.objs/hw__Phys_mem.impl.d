lib/hw/phys_mem.ml: Addr Bytes Char Hashtbl Int32 Printf
