lib/hw/mpm.mli: Cache_sim Cost Cpu Event_queue Phys_mem
