lib/hw/disk.ml: Addr Bytes Cost Event_queue Hashtbl
