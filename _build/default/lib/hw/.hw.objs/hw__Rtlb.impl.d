lib/hw/rtlb.ml: Array
