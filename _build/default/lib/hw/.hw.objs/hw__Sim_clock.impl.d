lib/hw/sim_clock.ml: Cost Fmt
