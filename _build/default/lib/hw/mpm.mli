(** A multiprocessor module (Figure 4): the unit of Cache Kernel
    replication — a few processors sharing local memory, a second-level
    cache, an event queue and a clock. *)

type t = {
  node_id : int;
  cpus : Cpu.t array;
  mem : Phys_mem.t;
  cache : Cache_sim.t;
  events : Event_queue.t;
}

val default_cpus : int
val default_mem : int

val create : ?cpus:int -> ?mem_size:int -> ?cache_size:int -> node_id:int -> unit -> t

val now : t -> Cost.cycles
(** The node's notion of "now": the furthest-ahead CPU. *)

val at : t -> time:Cost.cycles -> (unit -> unit) -> unit
val after : t -> delay:Cost.cycles -> (unit -> unit) -> unit
val n_cpus : t -> int
val pages : t -> int
