(* Simulated per-MPM clock, in cycles.

   Each MPM runs its own Cache Kernel instance and therefore its own notion
   of local time; cross-node interactions synchronise through the
   interconnect's event delivery. *)

type t = { mutable now : Cost.cycles }

let create () = { now = 0 }
let now t = t.now
let us t = Cost.us_of_cycles t.now

(** Advance the clock by [c] cycles. *)
let advance t c =
  assert (c >= 0);
  t.now <- t.now + c

(** Move the clock forward to absolute time [time] if it is in the future. *)
let advance_to t time = if time > t.now then t.now <- time

let pp ppf t = Fmt.pf ppf "%.2fus" (us t)
