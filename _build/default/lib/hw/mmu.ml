(* Memory management unit: address translation and access checking.

   Translation consults the per-processor TLB first and walks the
   three-level page table on a miss.  The fault taxonomy matches section
   2.1: mapping fault (no descriptor loaded), protection fault (write to a
   read-only page), privilege violation, consistency fault (remote or failed
   memory module), and bus error (physical address out of range). *)

type access = Read | Write | Execute

let pp_access ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Execute -> Fmt.string ppf "execute"

type fault_kind =
  | Missing_mapping
  | Protection_violation
  | Privilege_violation
  | Consistency_fault
  | Bus_error

let pp_fault_kind ppf = function
  | Missing_mapping -> Fmt.string ppf "missing-mapping"
  | Protection_violation -> Fmt.string ppf "protection"
  | Privilege_violation -> Fmt.string ppf "privilege"
  | Consistency_fault -> Fmt.string ppf "consistency"
  | Bus_error -> Fmt.string ppf "bus-error"

type fault = { va : int; access : access; kind : fault_kind }

let pp_fault ppf f =
  Fmt.pf ppf "%a fault at %a (%a)" pp_fault_kind f.kind Addr.pp_addr f.va pp_access f.access

type translation = {
  paddr : int;
  pte : Page_table.entry;
  tlb_hit : bool;
  cost : Cost.cycles; (* translation cost, excluding the data access itself *)
}

(** Translate virtual address [va] in address space [asid] (page table
    [table]) for [access], via [tlb].  On success the referenced/modified
    bits of the page-table entry are updated. *)
let translate ~tlb ~table ~asid ~va ~access : (translation, fault) result =
  let vpn = Addr.page_of va in
  let fault kind = Error { va; access; kind } in
  let finish ~pte ~tlb_hit ~cost =
    if pte.Page_table.remote then fault Consistency_fault
    else if access = Write && not pte.Page_table.flags.Page_table.writable then
      fault Protection_violation
    else begin
      pte.Page_table.referenced <- true;
      if access = Write then pte.Page_table.modified <- true;
      Ok { paddr = Addr.addr_of_page pte.Page_table.frame + Addr.offset_of va; pte; tlb_hit; cost }
    end
  in
  match Tlb.lookup tlb ~asid ~vpn with
  | Some pte -> finish ~pte ~tlb_hit:true ~cost:Cost.tlb_lookup
  | None -> (
    let entry, levels = Page_table.lookup table va in
    let walk_cost = Cost.tlb_lookup + (levels * Cost.page_table_level) in
    match entry with
    | None -> fault Missing_mapping
    | Some pte ->
      Tlb.insert tlb ~asid ~vpn ~pte;
      finish ~pte ~tlb_hit:false ~cost:walk_cost)

(** Cost of the data access itself given the second-level cache outcome. *)
let data_cost = function `Hit -> Cost.mem_word_cached | `Miss -> Cost.mem_word_miss
