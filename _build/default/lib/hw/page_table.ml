(* 68040-style three-level page tables.

   The current Cache Kernel implementation "uses Motorola 68040 page tables
   as dictated by the hardware" (section 4.1) and the space-overhead argument
   of section 5.2 is built on their sizes: 512-byte top-level tables,
   512-byte second-level tables, and 256-byte third-level tables mapping 64
   pages each.  With 4 KB pages that is a 7/7/6-bit split of the 32-bit
   virtual address. *)

type flags = {
  writable : bool;
  cachable : bool;
  message_mode : bool; (* page participates in memory-based messaging *)
}

let pp_flags ppf f =
  Fmt.pf ppf "%c%c%c"
    (if f.writable then 'w' else '-')
    (if f.cachable then 'c' else '-')
    (if f.message_mode then 'm' else '-')

let rw = { writable = true; cachable = true; message_mode = false }
let ro = { writable = false; cachable = true; message_mode = false }
let message = { writable = true; cachable = true; message_mode = true }

type entry = {
  mutable frame : int; (* physical page frame number *)
  mutable flags : flags;
  mutable referenced : bool;
  mutable modified : bool;
  mutable remote : bool;
      (* the backing cache line / memory module lives on a remote node or has
         failed: any access raises a consistency fault (section 2.1) *)
}

let make_entry ?(remote = false) ~frame ~flags () =
  { frame; flags; referenced = false; modified = false; remote }

type leaf = { slots : entry option array } (* 64 entries, 256 bytes *)
type mid = { leaves : leaf option array } (* 128 entries, 512 bytes *)
type t = { roots : mid option array; mutable live : int } (* 128 entries *)

let root_bits = 7
let mid_bits = 7
let leaf_bits = 6
let root_entries = 1 lsl root_bits
let mid_entries = 1 lsl mid_bits
let leaf_entries = 1 lsl leaf_bits
let root_table_bytes = 512
let mid_table_bytes = 512
let leaf_table_bytes = 256

let root_index va = (va lsr (Addr.page_shift + mid_bits + leaf_bits)) land (root_entries - 1)
let mid_index va = (va lsr (Addr.page_shift + leaf_bits)) land (mid_entries - 1)
let leaf_index va = (va lsr Addr.page_shift) land (leaf_entries - 1)

let create () = { roots = Array.make root_entries None; live = 0 }

(** Number of mapped pages. *)
let count t = t.live

(** Look up the entry mapping the page containing [va].  Returns the entry
    and the number of table levels walked (for cost accounting). *)
let lookup t va =
  match t.roots.(root_index va) with
  | None -> (None, 1)
  | Some mid -> (
    match mid.leaves.(mid_index va) with
    | None -> (None, 2)
    | Some leaf -> (leaf.slots.(leaf_index va), 3))

(** Install [entry] as the mapping for the page containing [va], allocating
    intermediate tables as needed.  Returns the entry it replaced, if any. *)
let insert t va entry =
  let mid =
    match t.roots.(root_index va) with
    | Some m -> m
    | None ->
      let m = { leaves = Array.make mid_entries None } in
      t.roots.(root_index va) <- Some m;
      m
  in
  let leaf =
    match mid.leaves.(mid_index va) with
    | Some l -> l
    | None ->
      let l = { slots = Array.make leaf_entries None } in
      mid.leaves.(mid_index va) <- Some l;
      l
  in
  let old = leaf.slots.(leaf_index va) in
  leaf.slots.(leaf_index va) <- Some entry;
  (match old with None -> t.live <- t.live + 1 | Some _ -> ());
  old

(** Remove and return the mapping for the page containing [va].  Empty
    intermediate tables are freed so {!space_bytes} stays accurate. *)
let remove t va =
  match t.roots.(root_index va) with
  | None -> None
  | Some mid -> (
    match mid.leaves.(mid_index va) with
    | None -> None
    | Some leaf -> (
      match leaf.slots.(leaf_index va) with
      | None -> None
      | Some e ->
        leaf.slots.(leaf_index va) <- None;
        t.live <- t.live - 1;
        if Array.for_all Option.is_none leaf.slots then begin
          mid.leaves.(mid_index va) <- None;
          if Array.for_all Option.is_none mid.leaves then
            t.roots.(root_index va) <- None
        end;
        Some e))

(** Apply [f va entry] to every live mapping. *)
let iter t f =
  Array.iteri
    (fun ri mid_opt ->
      match mid_opt with
      | None -> ()
      | Some mid ->
        Array.iteri
          (fun mi leaf_opt ->
            match leaf_opt with
            | None -> ()
            | Some leaf ->
              Array.iteri
                (fun li slot ->
                  match slot with
                  | None -> ()
                  | Some e ->
                    let va =
                      (ri lsl (Addr.page_shift + mid_bits + leaf_bits))
                      lor (mi lsl (Addr.page_shift + leaf_bits))
                      lor (li lsl Addr.page_shift)
                    in
                    f va e)
                leaf.slots)
          mid.leaves)
    t.roots

(** List of (virtual address, entry) pairs for every live mapping. *)
let to_list t =
  let acc = ref [] in
  iter t (fun va e -> acc := (va, e) :: !acc);
  List.rev !acc

(** Bytes consumed by the table structure itself: one 512-byte top-level
    table plus 512 bytes per live second-level and 256 bytes per live
    third-level table (section 5.2's space argument). *)
let space_bytes t =
  let bytes = ref root_table_bytes in
  Array.iter
    (function
      | None -> ()
      | Some mid ->
        bytes := !bytes + mid_table_bytes;
        Array.iter
          (function None -> () | Some _ -> bytes := !bytes + leaf_table_bytes)
          mid.leaves)
    t.roots;
  !bytes
