(* Discrete-event queue: a binary min-heap of timed callbacks.

   Ties break by insertion order so simulations are deterministic. *)

type event = { time : Cost.cycles; seq : int; action : unit -> unit }

type t = {
  mutable heap : event array;
  mutable len : int;
  mutable next_seq : int;
}

let dummy = { time = 0; seq = 0; action = ignore }
let create () = { heap = Array.make 64 dummy; len = 0; next_seq = 0 }
let is_empty t = t.len = 0
let length t = t.len

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(** Schedule [action] to run at absolute simulated time [time]. *)
let schedule t ~time action =
  if t.len = Array.length t.heap then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end;
  t.heap.(t.len) <- { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

(** Time of the earliest pending event. *)
let next_time t = if t.len = 0 then None else Some t.heap.(0).time

(** Remove and run the earliest event; returns its time. *)
let run_next t =
  if t.len = 0 then invalid_arg "Event_queue.run_next: empty";
  let ev = t.heap.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.heap.(0) <- t.heap.(t.len);
    sift_down t 0
  end;
  ev.action ();
  ev.time
