(** Address translation and access checking, with the fault taxonomy of
    section 2.1: mapping fault, protection fault, privilege violation,
    consistency fault, bus error. *)

type access = Read | Write | Execute

val pp_access : access Fmt.t

type fault_kind =
  | Missing_mapping
  | Protection_violation
  | Privilege_violation
  | Consistency_fault
  | Bus_error

val pp_fault_kind : fault_kind Fmt.t

type fault = { va : int; access : access; kind : fault_kind }

val pp_fault : fault Fmt.t

type translation = {
  paddr : int;
  pte : Page_table.entry;
  tlb_hit : bool;
  cost : Cost.cycles;  (** translation cost, excluding the data access *)
}

val translate :
  tlb:Tlb.t ->
  table:Page_table.t ->
  asid:int ->
  va:int ->
  access:access ->
  (translation, fault) result
(** Translate through the TLB, walking the page table on a miss.  On
    success the referenced/modified bits are updated. *)

val data_cost : [ `Hit | `Miss ] -> Cost.cycles
(** Cost of the data access given the second-level cache outcome. *)
