(** Simulated per-MPM clock, in cycles. *)

type t = { mutable now : Cost.cycles }

val create : unit -> t
val now : t -> Cost.cycles
val us : t -> float
val advance : t -> Cost.cycles -> unit
val advance_to : t -> Cost.cycles -> unit
val pp : t Fmt.t
