(* Statistics model of the MPM's software-controlled second-level cache.

   The prototype shares 4-8 MB of second-level cache (32-byte lines) among
   the four processors of an MPM.  The experiments that need it (MP3D page
   locality, miss accounting in section 4.3) only require hit/miss counts,
   so the model is a direct-mapped tag array; contents live in
   {!Phys_mem}. *)

type t = {
  line_shift : int;
  n_lines : int;
  tags : int array; (* -1 = invalid, otherwise line tag *)
  mutable hits : int;
  mutable misses : int;
  mutable message_updates : int;
      (* writes to message-mode lines: updated in place without ownership,
         per the ParaDiGM message-oriented consistency (section 2.2 note) *)
}

let create ?(size_bytes = 8 * 1024 * 1024) ?(line_size = Addr.cache_line_size) () =
  let line_shift =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 line_size 0
  in
  let n_lines = size_bytes / line_size in
  { line_shift; n_lines; tags = Array.make n_lines (-1); hits = 0; misses = 0; message_updates = 0 }

let hits t = t.hits
let misses t = t.misses
let message_updates t = t.message_updates

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.message_updates <- 0

let line_of t paddr = paddr lsr t.line_shift

(** Access the line containing [paddr].  Returns [`Hit] or [`Miss] and
    updates the tag array; a miss models a line fill. *)
let access t paddr =
  let line = line_of t paddr in
  let idx = line mod t.n_lines in
  if t.tags.(idx) = line then begin
    t.hits <- t.hits + 1;
    `Hit
  end
  else begin
    t.misses <- t.misses + 1;
    t.tags.(idx) <- line;
    `Miss
  end

(** A write to a message-mode line: counted separately because ParaDiGM's
    message-oriented consistency lets the sender write without taking
    ownership of the line. *)
let message_write t paddr =
  t.message_updates <- t.message_updates + 1;
  access t paddr

(** Invalidate every line of physical page [pfn] (page reallocation). *)
let flush_page t ~pfn =
  let base = Addr.addr_of_page pfn in
  let lines = Addr.page_size lsr t.line_shift in
  for i = 0 to lines - 1 do
    let line = line_of t (base + (i lsl t.line_shift)) in
    let idx = line mod t.n_lines in
    if t.tags.(idx) = line then t.tags.(idx) <- -1
  done
