(* A multiprocessor module (MPM): the unit of Cache Kernel replication.

   Matches Figure 4: a small number of processors sharing local memory and a
   second-level cache, with its own event queue (devices, timers) and clock.
   Default configuration follows the prototype: 4 CPUs; memory defaults are
   larger than the prototype's 2 MB so experiments can run big workloads
   without changing the architecture. *)

type t = {
  node_id : int;
  cpus : Cpu.t array;
  mem : Phys_mem.t;
  cache : Cache_sim.t;
  events : Event_queue.t;
}

let default_cpus = 4
let default_mem = 64 * 1024 * 1024

let create ?(cpus = default_cpus) ?(mem_size = default_mem) ?(cache_size = 8 * 1024 * 1024)
    ~node_id () =
  if cpus <= 0 then invalid_arg "Mpm.create: need at least one CPU";
  {
    node_id;
    cpus = Array.init cpus (fun id -> Cpu.create ~id);
    mem = Phys_mem.create ~size:mem_size;
    cache = Cache_sim.create ~size_bytes:cache_size ();
    events = Event_queue.create ();
  }

(** The MPM's notion of "now": the furthest-ahead CPU. *)
let now t = Array.fold_left (fun acc c -> max acc c.Cpu.local_time) 0 t.cpus

(** Schedule [action] on this node's event queue at absolute time [time]. *)
let at t ~time action = Event_queue.schedule t.events ~time action

(** Schedule [action] [delay] cycles from now. *)
let after t ~delay action = at t ~time:(now t + delay) action

let n_cpus t = Array.length t.cpus
let pages t = Phys_mem.pages t.mem
