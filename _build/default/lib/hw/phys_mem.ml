(* Physical memory of one MPM.

   Frames are allocated lazily so that configuring a large physical memory
   costs nothing until pages are touched.  Words are 32-bit little-endian,
   matching the 68040-era machine the paper measures (byte order is
   irrelevant to the experiments; only word granularity matters). *)

type t = {
  size : int; (* bytes *)
  frames : (int, Bytes.t) Hashtbl.t; (* page frame number -> contents *)
}

let create ~size =
  if size <= 0 || size mod Addr.page_size <> 0 then
    invalid_arg "Phys_mem.create: size must be a positive multiple of the page size";
  { size; frames = Hashtbl.create 1024 }

let size t = t.size
let pages t = t.size / Addr.page_size

(** True if [paddr] addresses a byte inside physical memory. *)
let valid t paddr = paddr >= 0 && paddr < t.size

let frame t pfn =
  match Hashtbl.find_opt t.frames pfn with
  | Some b -> b
  | None ->
    let b = Bytes.make Addr.page_size '\000' in
    Hashtbl.replace t.frames pfn b;
    b

let check t paddr len =
  if paddr < 0 || paddr + len > t.size then
    invalid_arg (Printf.sprintf "Phys_mem: access 0x%x+%d out of range" paddr len)

(** Read the 32-bit word at physical address [paddr] (word aligned). *)
let read_word t paddr =
  check t paddr 4;
  assert (Addr.word_aligned paddr);
  let b = frame t (Addr.page_of paddr) in
  Int32.to_int (Bytes.get_int32_le b (Addr.offset_of paddr)) land 0xFFFFFFFF

(** Write the 32-bit word [v] at physical address [paddr] (word aligned). *)
let write_word t paddr v =
  check t paddr 4;
  assert (Addr.word_aligned paddr);
  let b = frame t (Addr.page_of paddr) in
  Bytes.set_int32_le b (Addr.offset_of paddr) (Int32.of_int (v land 0xFFFFFFFF))

let read_byte t paddr =
  check t paddr 1;
  Char.code (Bytes.get (frame t (Addr.page_of paddr)) (Addr.offset_of paddr))

let write_byte t paddr v =
  check t paddr 1;
  Bytes.set (frame t (Addr.page_of paddr)) (Addr.offset_of paddr) (Char.chr (v land 0xFF))

(** Copy [len] bytes out of physical memory starting at [paddr].  Used by
    DMA devices and the pager; may cross page boundaries. *)
let read_bytes t paddr len =
  check t paddr len;
  let out = Bytes.create len in
  let rec loop src dst remaining =
    if remaining > 0 then begin
      let off = Addr.offset_of src in
      let n = min remaining (Addr.page_size - off) in
      Bytes.blit (frame t (Addr.page_of src)) off out dst n;
      loop (src + n) (dst + n) (remaining - n)
    end
  in
  loop paddr 0 len;
  out

(** Copy [data] into physical memory starting at [paddr]. *)
let write_bytes t paddr data =
  let len = Bytes.length data in
  check t paddr len;
  let rec loop dst src remaining =
    if remaining > 0 then begin
      let off = Addr.offset_of dst in
      let n = min remaining (Addr.page_size - off) in
      Bytes.blit data src (frame t (Addr.page_of dst)) off n;
      loop (dst + n) (src + n) (remaining - n)
    end
  in
  loop paddr 0 len

(** Zero the page frame [pfn]. *)
let zero_page t pfn =
  check t (Addr.addr_of_page pfn) Addr.page_size;
  match Hashtbl.find_opt t.frames pfn with
  | None -> () (* lazily allocated pages are already zero *)
  | Some b -> Bytes.fill b 0 Addr.page_size '\000'

(** Copy page frame [src] to page frame [dst] (used for copy-on-write). *)
let copy_page t ~src ~dst =
  check t (Addr.addr_of_page src) Addr.page_size;
  check t (Addr.addr_of_page dst) Addr.page_size;
  Bytes.blit (frame t src) 0 (frame t dst) 0 Addr.page_size
