(** 68040-style three-level page tables: 512-byte top- and second-level
    tables, 256-byte third-level tables mapping 64 pages each — the
    structure the paper's space-overhead argument is built on (sections
    4.1 and 5.2). *)

type flags = {
  writable : bool;
  cachable : bool;
  message_mode : bool;  (** page participates in memory-based messaging *)
}

val pp_flags : flags Fmt.t

val rw : flags
val ro : flags
val message : flags

(** A page-table entry.  Shared by reference with the TLB and the mapping
    cache, so flag and frame updates are seen everywhere at once. *)
type entry = {
  mutable frame : int;
  mutable flags : flags;
  mutable referenced : bool;  (** set by translation *)
  mutable modified : bool;  (** set by write translation *)
  mutable remote : bool;
      (** backing memory is remote or failed: accesses raise a consistency
          fault (section 2.1) *)
}

val make_entry : ?remote:bool -> frame:int -> flags:flags -> unit -> entry

type t

val root_table_bytes : int
val mid_table_bytes : int
val leaf_table_bytes : int

val create : unit -> t

val count : t -> int
(** Number of mapped pages. *)

val lookup : t -> int -> entry option * int
(** [lookup t va] returns the entry mapping [va]'s page and the number of
    table levels walked (for cost accounting). *)

val insert : t -> int -> entry -> entry option
(** Install a mapping, allocating intermediate tables; returns any entry it
    replaced. *)

val remove : t -> int -> entry option
(** Remove a mapping; empty intermediate tables are freed. *)

val iter : t -> (int -> entry -> unit) -> unit
val to_list : t -> (int * entry) list

val space_bytes : t -> int
(** Bytes consumed by the table structure itself. *)
