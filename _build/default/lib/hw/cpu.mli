(** One processor of an MPM: local clock, TLB, reverse TLB, counters.
    Each CPU carries its own local time so the engine can interleave
    processors at effect granularity. *)

type t = {
  id : int;
  tlb : Tlb.t;
  rtlb : Rtlb.t;
  mutable local_time : Cost.cycles;
  mutable busy_cycles : Cost.cycles;
  mutable idle_cycles : Cost.cycles;
  mutable switches : int;
}

val create : id:int -> t

val charge : t -> Cost.cycles -> unit
(** Charge cycles of useful work. *)

val idle_until : t -> Cost.cycles -> unit
(** Advance the clock, accounting the gap as idle. *)

val utilisation : t -> float
val pp : t Fmt.t
