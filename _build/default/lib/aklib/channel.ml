(* Communication channels over memory-based messaging (sections 2.2, 3).

   A channel is a shared physical segment of two pages mapped into sender
   and receiver address spaces:

   - a *data page* divided into fixed-size message slots, written by the
     sender and read by the receiver through ordinary shared memory —
     "direct marshaling and demarshaling ... with minimal copying and no
     protection boundary crossing in software";

   - a *bell page* in message mode: the sender publishes a message by
     writing the slot's word count into the slot's bell word, which
     generates an address-valued signal delivered to the receiver's signal
     thread.  The signal address, translated into the receiver's space,
     identifies the slot.

   The thread-side operations ([send], [recv]) are simulated instruction
   streams: every word moves through {!Hw.Exec} memory effects and is
   charged like any other memory traffic. *)

open Cachekernel

let slot_words = 60 (* payload words per slot *)
let slot_bytes = 256
let n_slots = Hw.Addr.page_size / slot_bytes (* 16 *)

(** The shared pages of a channel, pinned in a two-page segment so regions
    and refaults work like any other memory. *)
type shared = { segment : Segment.t; data_pfn : int; bell_pfn : int }

(** Create the channel's shared segment from two frames of [frames]. *)
let create_shared (mgr : Segment_mgr.t) ~name =
  let frames = Frame_alloc.take mgr.Segment_mgr.env.Segment_mgr.frames 2 in
  let data_pfn, bell_pfn =
    match frames with [ a; b ] -> (a, b) | _ -> assert false
  in
  let segment = Segment_mgr.create_segment mgr ~name ~pages:2 in
  let pin pfn page =
    Segment.set_state segment page
      (Segment.In_memory
         { Segment.pfn; dirty = false; backing = None; mappers = []; cow_pending = None })
  in
  pin data_pfn 0;
  pin bell_pfn 1;
  { segment; data_pfn; bell_pfn }

(** One side's view: base virtual addresses of the data and bell pages. *)
type endpoint = { data_va : int; bell_va : int }

(** Map the channel into [vsp] at [va] (two consecutive pages).  The sender
    maps both pages writable with the bell in message mode; the receiver
    maps them read-only and hangs [signal_thread] on the bell page. *)
let attach (mgr : Segment_mgr.t) vsp shared ~va ~role =
  let prot, signal_thread =
    match role with
    | `Sender -> (Region.Rw, fun () -> None)
    | `Receiver f -> (Region.Ro, f)
  in
  let data_region =
    Region.v ~prot ~va_start:va ~pages:1 ~segment:shared.segment ~seg_offset:0 ()
  in
  let bell_region =
    Region.v ~prot ~message_mode:true ~signal_thread
      ~va_start:(va + Hw.Addr.page_size)
      ~pages:1 ~segment:shared.segment ~seg_offset:1 ()
  in
  Segment_mgr.attach_region mgr vsp data_region;
  Segment_mgr.attach_region mgr vsp bell_region;
  { data_va = va; bell_va = va + Hw.Addr.page_size }

(* -- Thread-side operations (simulated instruction streams) -- *)

(** Write [words] into [slot] and ring its bell.  The bell write is last:
    the message is complete when the signal fires. *)
let send (ep : endpoint) ~slot words =
  if List.length words > slot_words then invalid_arg "Channel.send: message too long";
  List.iteri (fun i w -> Hw.Exec.mem_write (ep.data_va + (slot * slot_bytes) + (4 * i)) w) words;
  Hw.Exec.mem_write (ep.bell_va + (4 * slot)) (List.length words)

(** Does signal address [va] belong to this endpoint's bell page?  Returns
    the slot if so. *)
let decode (ep : endpoint) va =
  if va >= ep.bell_va && va < ep.bell_va + (4 * n_slots) then Some ((va - ep.bell_va) / 4)
  else None

(** Read the [len]-word message out of [slot]. *)
let read_slot (ep : endpoint) ~slot ~len =
  List.init len (fun i -> Hw.Exec.mem_read (ep.data_va + (slot * slot_bytes) + (4 * i)))

(** Block until a message arrives on this endpoint; other signals are
    discarded (single-channel receivers).  Returns (slot, words). *)
let rec recv (ep : endpoint) =
  match Hw.Exec.trap Api.Ck_wait_signal with
  | Api.Ck_signal va -> (
    match decode ep va with
    | Some slot ->
      let len = Hw.Exec.mem_read (ep.bell_va + (4 * slot)) in
      (slot, read_slot ep ~slot ~len)
    | None -> recv ep)
  | _ -> recv ep

(** Wait for a signal and dispatch over several endpoints.  Returns the
    endpoint index, slot and message. *)
let rec recv_any (eps : endpoint array) =
  match Hw.Exec.trap Api.Ck_wait_signal with
  | Api.Ck_signal va -> (
    let rec scan i =
      if i >= Array.length eps then None
      else
        match decode eps.(i) va with Some slot -> Some (i, slot) | None -> scan (i + 1)
    in
    match scan 0 with
    | Some (i, slot) ->
      let len = Hw.Exec.mem_read (eps.(i).bell_va + (4 * slot)) in
      (i, slot, read_slot eps.(i) ~slot ~len)
    | None -> recv_any eps)
  | _ -> recv_any eps
