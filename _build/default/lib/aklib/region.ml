(* Virtual memory regions: a contiguous range of virtual addresses bound to
   a window of a segment, with protection and messaging attributes.  The
   segment manager's fault handler resolves a faulting address to a region
   and serves the page from the region's segment. *)

type prot = Ro | Rw

let pp_prot ppf = function Ro -> Fmt.string ppf "ro" | Rw -> Fmt.string ppf "rw"

type t = {
  va_start : int; (* page aligned *)
  pages : int;
  segment : Segment.t;
  seg_offset : int; (* first segment page backing this region *)
  prot : prot;
  message_mode : bool;
  signal_thread : unit -> Cachekernel.Oid.t option;
      (* resolved at mapping-load time so rebindings (thread reloads,
         signal redirection) survive refaults *)
}

let v ?(prot = Rw) ?(message_mode = false) ?(signal_thread = fun () -> None) ~va_start
    ~pages ~segment ~seg_offset () =
  if va_start land (Hw.Addr.page_size - 1) <> 0 then
    invalid_arg "Region.v: va_start must be page aligned";
  if seg_offset + pages > segment.Segment.pages then
    invalid_arg "Region.v: window exceeds segment";
  { va_start; pages; segment; seg_offset; prot; message_mode; signal_thread }

let contains t va = va >= t.va_start && va < t.va_start + (t.pages * Hw.Addr.page_size)

(** Segment page index backing virtual address [va]. *)
let page_index t va = ((va - t.va_start) / Hw.Addr.page_size) + t.seg_offset

(** Virtual address of segment page [page] within this region. *)
let va_of_page t page = t.va_start + ((page - t.seg_offset) * Hw.Addr.page_size)

let va_end t = t.va_start + (t.pages * Hw.Addr.page_size)

let pp ppf t =
  Fmt.pf ppf "[%a..%a) %a %s" Hw.Addr.pp_addr t.va_start Hw.Addr.pp_addr (va_end t)
    pp_prot t.prot t.segment.Segment.name
