(* Physical frame allocator over the page groups granted to an application
   kernel.

   The system resource manager allocates memory to kernels in page groups
   (128 contiguous pages); the application kernel suballocates frames
   internally — this is that suballocator.  Because the application kernel
   selects the physical page frame for every mapping it loads, it fully
   controls physical page selection and the replacement policy. *)

type t = {
  mutable free : int list; (* free page frame numbers *)
  mutable groups : int list; (* page groups owned *)
  mutable total : int;
  mutable low_water : int; (* minimum free frames seen, for reporting *)
}

let create () = { free = []; groups = []; total = 0; low_water = max_int }

(** Add all frames of page group [g] to the pool. *)
let add_group t g =
  if List.mem g t.groups then invalid_arg "Frame_alloc.add_group: duplicate group";
  t.groups <- g :: t.groups;
  let base = Hw.Addr.first_page_of_group g in
  for i = Hw.Addr.pages_per_group - 1 downto 0 do
    t.free <- (base + i) :: t.free
  done;
  t.total <- t.total + Hw.Addr.pages_per_group

(** Reserve [n] specific frames out of the pool (device regions, channel
    pages).  Returns the frames removed. *)
let take t n =
  let rec loop n acc free =
    if n = 0 then (List.rev acc, free)
    else
      match free with
      | [] -> invalid_arg "Frame_alloc.take: pool exhausted"
      | f :: rest -> loop (n - 1) (f :: acc) rest
  in
  let taken, rest = loop n [] t.free in
  t.free <- rest;
  taken

let alloc t =
  match t.free with
  | [] -> None
  | f :: rest ->
    t.free <- rest;
    t.low_water <- min t.low_water (List.length rest);
    Some f

let free t pfn = t.free <- pfn :: t.free
let available t = List.length t.free
let total t = t.total
let groups t = t.groups
