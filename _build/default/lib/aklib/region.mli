(** Virtual memory regions: a contiguous virtual range bound to a window of
    a segment, with protection and messaging attributes.  The segment
    manager's fault handler resolves a faulting address to a region and
    serves the page from its segment. *)

type prot = Ro | Rw

val pp_prot : prot Fmt.t

type t = {
  va_start : int;
  pages : int;
  segment : Segment.t;
  seg_offset : int;
  prot : prot;
  message_mode : bool;
  signal_thread : unit -> Cachekernel.Oid.t option;
      (** resolved at mapping-load time so rebindings survive refaults *)
}

val v :
  ?prot:prot ->
  ?message_mode:bool ->
  ?signal_thread:(unit -> Cachekernel.Oid.t option) ->
  va_start:int ->
  pages:int ->
  segment:Segment.t ->
  seg_offset:int ->
  unit ->
  t

val contains : t -> int -> bool
val page_index : t -> int -> int
val va_of_page : t -> int -> int
val va_end : t -> int
val pp : t Fmt.t
