(* Physical segments: the application kernel's unit of memory content.

   A segment is an array of pages, each of which is zero-filled, resident
   in a physical frame, out on the backing store, or a deferred copy of
   another segment's page (the fork path).  The segment manager moves pages
   between these states; the Cache Kernel only ever sees the mappings that
   result. *)

type resident = {
  pfn : int;
  mutable dirty : bool; (* needs page-out before the frame is reused *)
  mutable backing : int option; (* block holding a clean on-disk copy *)
  mutable mappers : (int * int) list; (* (space tag, va) of loaded mappings *)
  mutable cow_pending : (t * int) option;
      (* this residency was created optimistically for a deferred copy from
         (segment, page); if the mapping is written back unmodified the copy
         never happened and the page reverts *)
}

and page_state =
  | Zero
  | In_memory of resident
  | On_disk of int (* block *)
  | Cow_of of t * int (* share/copy from another segment's page *)

and t = {
  id : int;
  name : string;
  pages : int;
  table : (int, page_state) Hashtbl.t; (* sparse: absent = Zero *)
  mutable resident_count : int;
}

let create ~id ~name ~pages = { id; name; pages; table = Hashtbl.create 16; resident_count = 0 }

let state t page =
  if page < 0 || page >= t.pages then invalid_arg "Segment.state: page out of range";
  match Hashtbl.find_opt t.table page with Some s -> s | None -> Zero

let set_state t page s =
  let was_resident =
    match Hashtbl.find_opt t.table page with Some (In_memory _) -> true | _ -> false
  in
  let is_resident = match s with In_memory _ -> true | _ -> false in
  (match s with Zero -> Hashtbl.remove t.table page | _ -> Hashtbl.replace t.table page s);
  if was_resident && not is_resident then t.resident_count <- t.resident_count - 1
  else if is_resident && not was_resident then t.resident_count <- t.resident_count + 1

let resident_count t = t.resident_count

(** Iterate over resident pages. *)
let iter_resident t f =
  Hashtbl.iter (fun page -> function In_memory r -> f page r | _ -> ()) t.table

let pp ppf t =
  Fmt.pf ppf "segment#%d %s (%d pages, %d resident)" t.id t.name t.pages t.resident_count
