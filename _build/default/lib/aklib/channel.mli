(** Communication channels over memory-based messaging (sections 2.2, 3).

    A channel is a shared two-page segment: a slotted {e data page} written
    through ordinary shared memory, and a message-mode {e bell page} whose
    writes generate address-valued signals to the receiver's signal
    thread.  Send and receive are simulated instruction streams — every
    word moves through the memory system and is charged accordingly; the
    kernel is involved only in signal delivery, never in the data path. *)

val slot_words : int
(** Payload words per message slot. *)

val slot_bytes : int
val n_slots : int

type shared = { segment : Segment.t; data_pfn : int; bell_pfn : int }
(** The pinned shared pages of a channel. *)

val create_shared : Segment_mgr.t -> name:string -> shared
(** Carve a channel out of two frames of the kernel's pool. *)

type endpoint = { data_va : int; bell_va : int }
(** One side's view of the channel in its own address space. *)

val attach :
  Segment_mgr.t ->
  Segment_mgr.vspace ->
  shared ->
  va:int ->
  role:[ `Sender | `Receiver of unit -> Cachekernel.Oid.t option ] ->
  endpoint
(** Map the channel at [va] (two pages).  The receiver supplies a callback
    resolving its signal thread, so rebindings survive refaults. *)

val send : endpoint -> slot:int -> int list -> unit
(** (thread context) Write a message into a slot and ring its bell. *)

val decode : endpoint -> int -> int option
(** Does a signal address belong to this endpoint's bell page?  Returns the
    slot. *)

val read_slot : endpoint -> slot:int -> len:int -> int list
(** (thread context) Read a message out of a slot. *)

val recv : endpoint -> int * int list
(** (thread context) Block until a message arrives; returns (slot, words). *)

val recv_any : endpoint array -> int * int * int list
(** (thread context) Wait on several endpoints; returns (endpoint index,
    slot, words). *)
