(* Backing store for an application kernel's segments.

   Paging I/O belongs to application kernels, not the Cache Kernel.  This
   wraps the simulated disk with block allocation and page-granularity
   transfers between physical frames and blocks; completions arrive through
   the node's event queue. *)

type t = {
  disk : Hw.Disk.t;
  mem : Hw.Phys_mem.t;
  mutable free_blocks : int list;
  mutable page_ins : int;
  mutable page_outs : int;
}

let create ~disk ~mem = { disk; mem; free_blocks = []; page_ins = 0; page_outs = 0 }

let alloc_block t =
  match t.free_blocks with
  | b :: rest ->
    t.free_blocks <- rest;
    b
  | [] -> Hw.Disk.alloc_block t.disk

let free_block t b = t.free_blocks <- b :: t.free_blocks

(** Write frame [pfn] to a fresh (or supplied) block; [k block] runs on
    completion. *)
let page_out t ?block ~pfn k =
  t.page_outs <- t.page_outs + 1;
  let block = match block with Some b -> b | None -> alloc_block t in
  let data = Hw.Phys_mem.read_bytes t.mem (Hw.Addr.addr_of_page pfn) Hw.Addr.page_size in
  Hw.Disk.write t.disk ~block data (fun () -> k block)

(** Read [block] into frame [pfn]; [k ()] runs on completion. *)
let page_in t ~block ~pfn k =
  t.page_ins <- t.page_ins + 1;
  Hw.Disk.read t.disk ~block (fun data ->
      Hw.Phys_mem.write_bytes t.mem (Hw.Addr.addr_of_page pfn) data;
      k ())

(** Synchronous block write for boot-time loading of program images. *)
let write_block_now t ~block data = Hw.Disk.write_now t.disk ~block data

let page_ins t = t.page_ins
let page_outs t = t.page_outs
