(** Physical frame suballocator over the page groups granted to an
    application kernel by the system resource manager.  Because the
    application kernel picks the frame for every mapping it loads, it
    fully controls physical page selection and replacement policy. *)

type t

val create : unit -> t

val add_group : t -> int -> unit
(** Add all 128 frames of a page group to the pool. *)

val take : t -> int -> int list
(** Reserve specific frames (device regions, channel pages).
    @raise Invalid_argument if the pool is exhausted. *)

val alloc : t -> int option
val free : t -> int -> unit
val available : t -> int
val total : t -> int
val groups : t -> int list
