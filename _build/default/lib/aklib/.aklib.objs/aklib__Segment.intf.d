lib/aklib/segment.mli: Fmt Hashtbl
