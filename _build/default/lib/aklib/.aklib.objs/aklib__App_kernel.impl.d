lib/aklib/app_kernel.ml: Api Array Backing_store Cachekernel Config Frame_alloc Fun Hw Instance Kernel_obj List Oid Queue Segment_mgr Thread_lib Wb
