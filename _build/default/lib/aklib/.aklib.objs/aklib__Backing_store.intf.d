lib/aklib/backing_store.mli: Bytes Hw
