lib/aklib/frame_alloc.mli:
