lib/aklib/channel.ml: Api Array Cachekernel Frame_alloc Hw List Region Segment Segment_mgr
