lib/aklib/segment_mgr.ml: Api Backing_store Bytes Cachekernel Config Frame_alloc Hashtbl Hw Instance Kernel_obj List Logs Oid Queue Region Segment Signals Thread_obj Wb
