lib/aklib/dsm.mli: App_kernel Hw Segment_mgr
