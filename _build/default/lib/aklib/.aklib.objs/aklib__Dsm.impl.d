lib/aklib/dsm.ml: Api App_kernel Array Bytes Cachekernel Fmt Frame_alloc Hashtbl Hw Instance Int32 Kernel_obj List Logs Oid Segment_mgr Signals
