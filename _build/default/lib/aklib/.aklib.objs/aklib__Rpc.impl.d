lib/aklib/rpc.ml: Api Buffer Cachekernel Channel Char Hw List String
