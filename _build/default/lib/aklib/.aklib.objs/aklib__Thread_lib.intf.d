lib/aklib/thread_lib.mli: Api Cachekernel Hw Instance Oid Thread_obj Wb
