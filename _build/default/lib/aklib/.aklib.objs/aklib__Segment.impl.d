lib/aklib/segment.ml: Fmt Hashtbl
