lib/aklib/region.mli: Cachekernel Fmt Segment
