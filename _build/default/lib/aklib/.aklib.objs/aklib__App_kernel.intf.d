lib/aklib/app_kernel.mli: Api Backing_store Cachekernel Frame_alloc Hw Instance Kernel_obj Oid Segment_mgr Thread_lib Wb
