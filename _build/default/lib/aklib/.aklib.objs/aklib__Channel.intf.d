lib/aklib/channel.mli: Cachekernel Segment Segment_mgr
