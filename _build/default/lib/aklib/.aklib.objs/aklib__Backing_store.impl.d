lib/aklib/backing_store.ml: Hw
