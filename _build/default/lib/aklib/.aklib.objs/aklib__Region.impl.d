lib/aklib/region.ml: Cachekernel Fmt Hw Segment
