lib/aklib/frame_alloc.ml: Hw List
