lib/aklib/rpc.mli: Channel Segment_mgr
