lib/aklib/thread_lib.ml: Api Cachekernel Hashtbl Hw Instance Oid Thread_obj Wb
