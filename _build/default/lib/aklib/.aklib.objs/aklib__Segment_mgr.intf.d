lib/aklib/segment_mgr.mli: Api Backing_store Bytes Cachekernel Frame_alloc Hashtbl Instance Kernel_obj Oid Queue Region Segment Wb
