(** Distributed shared memory over consistency faults (section 2.1).

    A mapping loaded with the [remote] attribute raises a consistency fault
    on access; the Cache Kernel forwards it to the owning application
    kernel like any other exception, and this module's single-holder
    migratory protocol fetches the page from its current holder over the
    fiber channel, reinstalls the mapping, and lets the access retry.
    Coordination between kernels is entirely higher-level software, as
    section 3 prescribes. *)

type page_state = Valid | Invalid

type t

val create :
  App_kernel.t ->
  net:Hw.Interconnect.t ->
  home:int ->
  pages:int ->
  va_base:int ->
  Segment_mgr.vspace ->
  t
(** Create one node's view of a shared segment.  All participating nodes
    pass the same [home]; the home node starts holding every page.  The
    consistency-fault hook of the kernel's segment manager is installed. *)

val state : t -> int -> page_state
val fetches : t -> int
(** Fetch requests processed (meaningful at the home node). *)

val recalls : t -> int
val invalidations : t -> int
