(* Object-oriented RPC over memory-based messaging (section 2.2).

   "An object-oriented RPC facility implemented on top of the memory-based
   messaging as a user-space communication library allows applications and
   services to use a conventional procedural communication interface."

   A connection is a pair of channels (request, response).  A request is a
   method selector plus marshalled arguments; the server's dispatch loop
   invokes the registered handler and sends the reply in the paired slot.
   Marshalling is word-oriented ({!Wire}) and every word moves through the
   simulated memory system, so RPC cost is memory-system cost — no copying
   through the kernel, no protection boundary crossing. *)

open Cachekernel

module Wire = struct
  (** Flat word-level marshalling: ints as words, strings as a length word
      plus packed bytes. *)

  let of_string s =
    let n = String.length s in
    let words = (n + 3) / 4 in
    n
    :: List.init words (fun w ->
           let b i =
             let idx = (w * 4) + i in
             if idx < n then Char.code s.[idx] else 0
           in
           b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))

  let to_string = function
    | [] -> ("", [])
    | n :: rest ->
      let words = (n + 3) / 4 in
      let buf = Buffer.create n in
      let rec take k ws =
        if k = 0 then ws
        else
          match ws with
          | [] -> invalid_arg "Wire.to_string: truncated"
          | w :: tl ->
            for i = 0 to 3 do
              let idx = ((words - k) * 4) + i in
              if idx < n then Buffer.add_char buf (Char.chr ((w lsr (8 * i)) land 0xFF))
            done;
            take (k - 1) tl
      in
      let rest = take words rest in
      (Buffer.contents buf, rest)
end

(** One side of a connection: a request endpoint and a response endpoint
    (each a {!Channel.endpoint}). *)
type conn = { req : Channel.endpoint; rsp : Channel.endpoint }

(** Build the shared state for a connection: two channels. *)
let create_shared mgr ~name =
  ( Channel.create_shared mgr ~name:(name ^ ".req"),
    Channel.create_shared mgr ~name:(name ^ ".rsp") )

(** Client-side call: marshal [method_id :: args] into a request slot, ring
    the bell, and block for the reply in the paired response slot. *)
let call (c : conn) ~slot ~method_id args =
  Channel.send c.req ~slot (method_id :: args);
  let rec await () =
    match Hw.Exec.trap Api.Ck_wait_signal with
    | Api.Ck_signal va -> (
      match Channel.decode c.rsp va with
      | Some s when s = slot ->
        let len = Hw.Exec.mem_read (c.rsp.Channel.bell_va + (4 * s)) in
        Channel.read_slot c.rsp ~slot:s ~len
      | _ -> await ())
    | _ -> await ()
  in
  await ()

(** Server dispatch loop body: wait for one request, dispatch to [handle],
    reply in the same slot.  Returns after one exchange so callers can
    compose it into their own loops. *)
let serve_one (c : conn) ~handle =
  let slot, msg = Channel.recv c.req in
  let reply =
    match msg with
    | method_id :: args -> handle ~method_id args
    | [] -> []
  in
  Channel.send c.rsp ~slot reply

(** Run [serve_one] forever (for dedicated server threads). *)
let serve_forever (c : conn) ~handle =
  let rec loop () =
    serve_one c ~handle;
    loop ()
  in
  loop ()
