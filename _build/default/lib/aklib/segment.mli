(** Physical segments: the application kernel's unit of memory content.
    Each page is zero-filled, resident in a frame, out on backing store, or
    a deferred copy of another segment's page (the fork path); the segment
    manager moves pages between these states and the Cache Kernel only ever
    sees the resulting mappings. *)

type resident = {
  pfn : int;
  mutable dirty : bool;  (** needs page-out before the frame is reused *)
  mutable backing : int option;  (** block holding a clean on-disk copy *)
  mutable mappers : (int * int) list;  (** (space tag, va) of loaded mappings *)
  mutable cow_pending : (t * int) option;
      (** optimistic residency for a deferred copy from (segment, page);
          reverted if the mapping writes back unmodified *)
}

and page_state =
  | Zero
  | In_memory of resident
  | On_disk of int
  | Cow_of of t * int

and t = {
  id : int;
  name : string;
  pages : int;
  table : (int, page_state) Hashtbl.t;
  mutable resident_count : int;
}

val create : id:int -> name:string -> pages:int -> t
val state : t -> int -> page_state
val set_state : t -> int -> page_state -> unit
val resident_count : t -> int
val iter_resident : t -> (int -> resident -> unit) -> unit
val pp : t Fmt.t
