(** The MP3D-style particle-in-cell simulation kernel (sections 3, 5.2):
    the paper's example of a sophisticated application running directly on
    the Cache Kernel with application-specific memory management.

    Reproduces the section 5.2 experiment — "up to a 25 percent degradation
    ... from processors accessing particles scattered across too many
    pages" — by running the same workload under two placement policies;
    the degradation emerges from the TLB model.  Also demonstrates
    application-controlled paging via a locality-aware replacement hook. *)

type placement = Scattered | Clustered

val pp_placement : placement Fmt.t

val particle_words : int
val particles_per_page : int

type t

val create :
  Aklib.App_kernel.t ->
  particles:int ->
  cells:int ->
  placement:placement ->
  ?compute_per_particle:Hw.Cost.cycles ->
  unit ->
  (t, Cachekernel.Api.error) result

type report = {
  placement : placement;
  steps : int;
  elapsed_us : float;
  us_per_step : float;
  tlb_miss_rate : float;
  cache_miss_rate : float;
  page_ins : int;
  evictions : int;
}

val pp_report : report Fmt.t

val run : t -> steps:int -> ?workers:int -> unit -> report
(** Run the simulation on worker threads (one per CPU by default) and
    report timing and memory-system behaviour. *)

val install_locality_aware_eviction : t -> unit
(** Replace the kernel's page-replacement policy with one that evicts
    particle pages of cells outside the active processing window — "it can
    identify the portion of its data set to page out to provide room for
    data it is about to process" (section 3). *)
