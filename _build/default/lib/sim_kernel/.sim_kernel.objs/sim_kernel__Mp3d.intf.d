lib/sim_kernel/mp3d.mli: Aklib Cachekernel Fmt Hw
