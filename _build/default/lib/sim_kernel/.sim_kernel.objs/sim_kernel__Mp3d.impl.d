lib/sim_kernel/mp3d.ml: Aklib Api App_kernel Array Backing_store Cachekernel Engine Fmt Hw Instance Region Segment Segment_mgr Thread_lib
