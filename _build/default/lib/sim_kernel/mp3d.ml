(* MP3D-style particle-in-cell simulation kernel.

   The paper's running example of a sophisticated application kernel
   (sections 3 and 5.2): a hypersonic wind-tunnel simulation using the
   particle-in-cell technique, run directly on the Cache Kernel for
   application-specific management of physical memory and scheduling.
   Section 5.2 reports "up to a 25 percent degradation in performance in
   the MP3D program from processors accessing particles scattered across
   too many pages", solved by enforcing page locality — copying particles
   so each cell's particles are contiguous.

   This module reproduces that experiment: the same particle workload under
   two placement policies —

   - [Scattered]: particle slots are permuted across the whole array, so
     iterating one cell's particles touches many pages (TLB pressure);
   - [Clustered]: particles are laid out cell-major, so a cell's particles
     share a handful of pages.

   Particles live in simulated memory (8 words each) and every access goes
   through the MMU/TLB/cache models, so the degradation *emerges* from the
   memory system rather than being asserted.

   It also demonstrates application-controlled paging: the kernel installs
   its own replacement policy that prefers evicting pages of cells far
   from the ones being processed ("it can identify the portion of its data
   set to page out to provide room for data it is about to process"). *)

open Cachekernel
open Aklib

type placement = Scattered | Clustered

let pp_placement ppf = function
  | Scattered -> Fmt.string ppf "scattered"
  | Clustered -> Fmt.string ppf "clustered"

let particle_words = 8
let particle_bytes = particle_words * 4
let particles_per_page = Hw.Addr.page_size / particle_bytes (* 128 *)

type t = {
  ak : App_kernel.t;
  vsp : Segment_mgr.vspace;
  seg : Segment.t;
  base : int; (* particle array base virtual address *)
  particles : int;
  cells : int;
  placement : placement;
  compute_per_particle : Hw.Cost.cycles;
  mutable active_window : int * int; (* cell range being processed *)
}

(* Cell of particle [p]. *)
let cell_of t p = p mod t.cells

(* Slot (array index) where particle [p] is stored, per placement. *)
let slot_of t p =
  match t.placement with
  | Clustered ->
    (* cell-major: all of cell c's particles contiguous *)
    let c = cell_of t p in
    let rank = p / t.cells in
    (c * (t.particles / t.cells)) + rank
  | Scattered ->
    (* multiplicative permutation scatters consecutive ranks across pages *)
    p * 2654435761 mod t.particles

let va_of_slot t slot = t.base + (slot * particle_bytes)

(** Create the simulation kernel state on application kernel [ak]. *)
let create ak ~particles ~cells ~placement ?(compute_per_particle = 100) () =
  if particles mod cells <> 0 then invalid_arg "Mp3d.create: cells must divide particles";
  let mgr = ak.App_kernel.mgr in
  match Segment_mgr.create_space mgr with
  | Error e -> Error e
  | Ok vsp ->
    let pages = (particles * particle_bytes / Hw.Addr.page_size) + 1 in
    let seg = Segment_mgr.create_segment mgr ~name:"particles" ~pages in
    let base = 0x20000000 in
    Segment_mgr.attach_region mgr vsp
      (Region.v ~va_start:base ~pages ~segment:seg ~seg_offset:0 ());
    Ok
      {
        ak;
        vsp;
        seg;
        base;
        particles;
        cells;
        placement;
        compute_per_particle;
        active_window = (0, cells);
      }

(* One particle update: read position and velocity, move, write back —
   six memory accesses plus the collision/move computation. *)
let update_particle t p =
  let va = va_of_slot t (slot_of t p) in
  let x = Hw.Exec.mem_read va in
  let v = Hw.Exec.mem_read (va + 4) in
  let flags = Hw.Exec.mem_read (va + 8) in
  Hw.Exec.compute t.compute_per_particle;
  Hw.Exec.mem_write va (x + v);
  Hw.Exec.mem_write (va + 4) (v lxor (flags land 1));
  Hw.Exec.mem_write (va + 12) p

(* Process the particles of cells [c0, c1) — one worker's share of a step. *)
let process_cells t ~c0 ~c1 =
  t.active_window <- (c0, c1);
  for c = c0 to c1 - 1 do
    (* particles of cell c are c, c+cells, c+2*cells, ... *)
    let per_cell = t.particles / t.cells in
    for rank = 0 to per_cell - 1 do
      update_particle t (c + (rank * t.cells))
    done
  done

type report = {
  placement : placement;
  steps : int;
  elapsed_us : float;
  us_per_step : float;
  tlb_miss_rate : float;
  cache_miss_rate : float;
  page_ins : int;
  evictions : int;
}

let pp_report ppf r =
  Fmt.pf ppf "%a: %.1f us/step, tlb-miss %.3f, cache-miss %.3f, page-ins %d, evictions %d"
    pp_placement r.placement r.us_per_step r.tlb_miss_rate r.cache_miss_rate r.page_ins
    r.evictions

(* A simple barrier for worker gangs: OCaml state polled with a yield, so
   waiting threads burn (charged) poll cycles rather than blocking. *)
type barrier = { mutable arrived : int; mutable generation : int; parties : int }

let barrier_wait b =
  let gen = b.generation in
  b.arrived <- b.arrived + 1;
  if b.arrived = b.parties then begin
    b.arrived <- 0;
    b.generation <- gen + 1
  end
  else begin
    let rec spin () =
      if b.generation = gen then begin
        Hw.Exec.compute 120;
        ignore (Hw.Exec.trap Api.Ck_yield);
        spin ()
      end
    in
    spin ()
  end

(** Run [steps] simulation steps on [workers] worker threads (one per CPU
    by default) and report timing and memory-system behaviour. *)
let run t ~steps ?workers () =
  let inst = t.ak.App_kernel.inst in
  let node = inst.Instance.node in
  let workers = match workers with Some w -> w | None -> Hw.Mpm.n_cpus node in
  let cells_per_worker = (t.cells + workers - 1) / workers in
  (* reset memory-system statistics for a clean measurement *)
  Array.iter (fun (c : Hw.Cpu.t) -> Hw.Tlb.reset_stats c.Hw.Cpu.tlb) node.Hw.Mpm.cpus;
  Hw.Cache_sim.reset_stats node.Hw.Mpm.cache;
  let t0 = Hw.Mpm.now node in
  let barrier = { arrived = 0; generation = 0; parties = workers } in
  let worker w () =
    let c0 = w * cells_per_worker in
    let c1 = min t.cells ((w + 1) * cells_per_worker) in
    for _step = 1 to steps do
      process_cells t ~c0 ~c1;
      barrier_wait barrier
    done
  in
  for w = 0 to workers - 1 do
    match
      Thread_lib.spawn t.ak.App_kernel.threads ~space_tag:t.vsp.Segment_mgr.tag
        ~priority:12
        ~affinity:(w mod Hw.Mpm.n_cpus node)
        (Hw.Exec.unit_body (worker w))
    with
    | Ok _ -> ()
    | Error e -> Fmt.failwith "mp3d worker spawn: %a" Api.pp_error e
  done;
  ignore (Engine.run [| inst |]);
  let elapsed = Hw.Cost.us_of_cycles (Hw.Mpm.now node - t0) in
  let tlb_hits, tlb_misses =
    Array.fold_left
      (fun (h, m) (c : Hw.Cpu.t) -> (h + Hw.Tlb.hits c.Hw.Cpu.tlb, m + Hw.Tlb.misses c.Hw.Cpu.tlb))
      (0, 0) node.Hw.Mpm.cpus
  in
  let ch = Hw.Cache_sim.hits node.Hw.Mpm.cache
  and cm = Hw.Cache_sim.misses node.Hw.Mpm.cache in
  let rate a b = if a + b = 0 then 0.0 else float_of_int a /. float_of_int (a + b) in
  {
    placement = t.placement;
    steps;
    elapsed_us = elapsed;
    us_per_step = elapsed /. float_of_int steps;
    tlb_miss_rate = rate tlb_misses tlb_hits;
    cache_miss_rate = rate cm ch;
    page_ins = Backing_store.page_ins t.ak.App_kernel.store;
    evictions = (Segment_mgr.stats t.ak.App_kernel.mgr).Segment_mgr.evictions;
  }

(** Install the application-specific page-replacement policy: prefer to
    evict particle pages belonging to cells outside the active window —
    the application-controlled physical memory of Harty & Cheriton that
    the Cache Kernel model exports to user level. *)
let install_locality_aware_eviction t =
  let mgr = t.ak.App_kernel.mgr in
  let default = mgr.Segment_mgr.choose_victim in
  mgr.Segment_mgr.choose_victim <-
    (fun m ->
      (* scan the particle segment for a resident page whose cells are all
         outside the active window; fall back to FIFO *)
      let c0, c1 = t.active_window in
      let found = ref None in
      Segment.iter_resident t.seg (fun page r ->
          if !found = None then begin
            let first_slot = page * particles_per_page in
            let in_window = ref false in
            for s = first_slot to first_slot + particles_per_page - 1 do
              (* which cell does the particle in slot s belong to? invert
                 the layout only for clustered; scattered pages mix cells *)
              match t.placement with
              | Clustered ->
                let per_cell = max 1 (t.particles / t.cells) in
                let c = s / per_cell in
                if c >= c0 && c < c1 then in_window := true
              | Scattered -> in_window := true
            done;
            if not !in_window then found := Some (t.seg, page, r)
          end);
      match !found with Some v -> Some v | None -> default m)
