(* Processor-percentage accounting (section 4.3).

   The Cache Kernel monitors the consumption of processor time by each
   thread and adds it to the total consumed by its kernel for that
   processor, charging a premium for higher-priority execution and a
   discount for lower-priority execution.  A kernel that exceeds its
   percentage allocation on a processor has its threads reduced to run only
   when the processor is otherwise idle, until the accounting epoch rolls
   over. *)

(** The "normal" priority: charging is flat here, a premium above, a
    discount below — the graduated rate that gives kernels an incentive to
    run batch work at low priority. *)
let base_priority = 8

(** Percentage multiplier applied to CPU charges at [priority]. *)
let premium_percent ~priority =
  let raw = 100 + ((priority - base_priority) * 8) in
  max 60 (min 220 raw)

(** Account [cycles] of execution by a thread of [kernel] at [priority] on
    [cpu]; then demote the kernel on that CPU if it has exceeded its
    pro-rata allocation for the current epoch.  [elapsed] is the time since
    the epoch began; [grace] absorbs start-of-epoch burstiness. *)
let charge (kernel : Kernel_obj.t) ~cpu ~priority ~cycles ~elapsed ~grace =
  let weighted = cycles * premium_percent ~priority / 100 in
  kernel.Kernel_obj.consumed.(cpu) <- kernel.Kernel_obj.consumed.(cpu) + weighted;
  let allowed = kernel.Kernel_obj.cpu_percent.(cpu) * elapsed / 100 in
  if
    kernel.Kernel_obj.cpu_percent.(cpu) < 100
    && kernel.Kernel_obj.consumed.(cpu) > allowed + grace
  then begin
    let newly = not kernel.Kernel_obj.demoted.(cpu) in
    kernel.Kernel_obj.demoted.(cpu) <- true;
    newly
  end
  else false

(** Epoch rollover: forget consumption and lift demotions. *)
let reset_epoch (kernel : Kernel_obj.t) =
  Array.fill kernel.Kernel_obj.consumed 0 (Array.length kernel.Kernel_obj.consumed) 0;
  Array.fill kernel.Kernel_obj.demoted 0 (Array.length kernel.Kernel_obj.demoted) false

(** Fraction of [cpu] consumed by [kernel] in the epoch so far. *)
let consumed_fraction (kernel : Kernel_obj.t) ~cpu ~elapsed =
  if elapsed = 0 then 0.0
  else float_of_int kernel.Kernel_obj.consumed.(cpu) /. float_of_int elapsed
