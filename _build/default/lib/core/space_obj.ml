(* Address-space descriptors.

   An address space object is loaded with minimal state (the lock bit); its
   substance is the root of the page-table tree plus the per-page mappings
   loaded against it (section 2.1).  The address-space identifier used by
   the TLB is the descriptor's slot index; because TLB entries for the slot
   are flushed when the space is unloaded, slot reuse is safe. *)

type t = {
  mutable oid : Oid.t;
  owner : Oid.t; (* owning kernel *)
  tag : int; (* application-kernel cookie, echoed in writebacks *)
  table : Hw.Page_table.t;
  mutable locked : bool;
  mutable mapping_count : int;
  mutable thread_count : int;
  mutable recently_used : bool;
}

let create ~owner ~tag =
  {
    oid = Oid.none;
    owner;
    tag;
    table = Hw.Page_table.create ();
    locked = false;
    mapping_count = 0;
    thread_count = 0;
    recently_used = true;
  }

(** The hardware address-space identifier. *)
let asid t = t.oid.Oid.slot

let pp ppf t =
  Fmt.pf ppf "%a mappings=%d threads=%d%s" Oid.pp t.oid t.mapping_count t.thread_count
    (if t.locked then " locked" else "")
