(* Cache Kernel device drivers (section 2.2).

   Devices are exposed to application kernels as memory-based messaging:
   transmission and reception regions are physical pages that application
   kernels map (usually in message mode, with a signal thread on the
   reception pages).  A client transmits by writing a packet into the
   transmission page and signalling on it; reception deposits the packet
   into a reception page and raises an address-valued signal there.

   Two drivers demonstrate the paper's contrast:

   - {!Fiber}: the fiber-channel interface is designed for the
     memory-mapped model, so the driver is little more than region mapping
     plus a transmit hook (the prototype's driver is 276 lines).

   - {!Ethernet}: the Ethernet chip has a conventional DMA interface, so
     the driver must run a descriptor ring and copy between DMA buffers and
     the messaging regions — visibly more mechanism for the same interface.

   Packet layout in a transmission/reception page:
     word 0: destination node id   word 1: tag
     word 2: payload length        bytes 12..: payload *)

open Instance

let hdr_dst = 0
let hdr_tag = 4
let hdr_len = 8
let payload_off = 12
let max_payload = Hw.Addr.page_size - payload_off

let read_packet mem ~pfn =
  let base = Hw.Addr.addr_of_page pfn in
  let dst = Hw.Phys_mem.read_word mem (base + hdr_dst) in
  let tag = Hw.Phys_mem.read_word mem (base + hdr_tag) in
  let len = min max_payload (Hw.Phys_mem.read_word mem (base + hdr_len)) in
  let data = Hw.Phys_mem.read_bytes mem (base + payload_off) len in
  (dst, tag, data)

let write_packet mem ~pfn ~src ~tag data =
  let base = Hw.Addr.addr_of_page pfn in
  let len = min max_payload (Bytes.length data) in
  Hw.Phys_mem.write_word mem (base + hdr_dst) src; (* sender, on receive side *)
  Hw.Phys_mem.write_word mem (base + hdr_tag) tag;
  Hw.Phys_mem.write_word mem (base + hdr_len) len;
  Hw.Phys_mem.write_bytes mem (base + payload_off) (Bytes.sub data 0 len)

module Fiber = struct
  type t = {
    inst : Instance.t;
    nic : Hw.Nic.Fiber.t;
    tx_pfn : int;
    rx_pfns : int array;
    mutable rx_next : int;
  }

  (** Attach the fiber-channel driver.  [tx_pfn] is the transmission
      doorbell page: a client stages a packet in an ordinary buffer page
      and then writes that buffer's frame number into the doorbell — one
      message-mode store whose "signal address indicat[es] the packet
      buffer to transmit".  Received packets are deposited round-robin into
      [rx_pfns] and signalled on the page. *)
  let attach inst nic ~tx_pfn ~rx_pfns =
    let t = { inst; nic; tx_pfn; rx_pfns; rx_next = 0 } in
    Hashtbl.replace inst.device_hooks tx_pfn (fun offset ->
        let mem = inst.node.Hw.Mpm.mem in
        let buf_pfn = Hw.Phys_mem.read_word mem (Hw.Addr.addr_of_page tx_pfn + offset) in
        if buf_pfn > 0 && buf_pfn < Hw.Mpm.pages inst.node then begin
          let dst, tag, data = read_packet mem ~pfn:buf_pfn in
          Hw.Nic.Fiber.transmit nic ~dst ~tag data
        end);
    Hw.Nic.Fiber.set_receiver nic (fun pkt ->
        let pfn = t.rx_pfns.(t.rx_next) in
        t.rx_next <- (t.rx_next + 1) mod Array.length t.rx_pfns;
        write_packet inst.node.Hw.Mpm.mem ~pfn ~src:pkt.Hw.Interconnect.src
          ~tag:pkt.Hw.Interconnect.tag pkt.Hw.Interconnect.data;
        (* Address-valued signal on the reception page wakes the reader. *)
        Signals.signal_page inst ~pfn ~offset:0);
    t
end

module Ethernet = struct
  (* The DMA descriptor ring the driver must maintain to adapt the chip's
     interface to memory-based messaging. *)
  type dma_slot = { buf_pfn : int; mutable busy : bool }

  type t = {
    inst : Instance.t;
    nic : Hw.Nic.Ethernet.t;
    tx_pfn : int;
    rx_pfns : int array;
    tx_ring : dma_slot array;
    mutable tx_head : int;
    mutable rx_next : int;
    mutable tx_dropped : int;
  }

  (** Attach the Ethernet driver with a DMA ring of [ring] buffers carved
      from [dma_pfns]. *)
  let attach inst nic ~tx_pfn ~rx_pfns ~dma_pfns =
    let tx_ring = Array.map (fun pfn -> { buf_pfn = pfn; busy = false }) dma_pfns in
    let t = { inst; nic; tx_pfn; rx_pfns; tx_ring; tx_head = 0; rx_next = 0; tx_dropped = 0 } in
    Hashtbl.replace inst.device_hooks tx_pfn (fun offset ->
        (* The doorbell write names the staged packet buffer.  Copy it into
           a DMA buffer, build a descriptor, and kick the chip; the buffer
           is released by the completion callback. *)
        let mem = inst.node.Hw.Mpm.mem in
        let buf_pfn = Hw.Phys_mem.read_word mem (Hw.Addr.addr_of_page tx_pfn + offset) in
        let slot = t.tx_ring.(t.tx_head) in
        if buf_pfn <= 0 || buf_pfn >= Hw.Mpm.pages inst.node then ()
        else if slot.busy then t.tx_dropped <- t.tx_dropped + 1
        else begin
          t.tx_head <- (t.tx_head + 1) mod Array.length t.tx_ring;
          slot.busy <- true;
          let dst, tag, data = read_packet mem ~pfn:buf_pfn in
          write_packet mem ~pfn:slot.buf_pfn ~src:dst ~tag data;
          charge inst (Hw.Cost.ethernet_dma_setup + (Bytes.length data / 4));
          Hw.Nic.Ethernet.transmit nic ~dst
            ~paddr:(Hw.Addr.addr_of_page slot.buf_pfn)
            ~len:(payload_off + Bytes.length data)
            ~tag
            ~done_:(fun () -> slot.busy <- false)
            ()
        end);
    Hw.Nic.Ethernet.set_receiver nic (fun pkt ->
        (* The chip DMA'd into a driver buffer; demultiplex into the next
           reception region and signal the input stream's thread. *)
        let pfn = t.rx_pfns.(t.rx_next) in
        t.rx_next <- (t.rx_next + 1) mod Array.length t.rx_pfns;
        let data =
          if Bytes.length pkt.Hw.Interconnect.data > payload_off then
            Bytes.sub pkt.Hw.Interconnect.data payload_off
              (Bytes.length pkt.Hw.Interconnect.data - payload_off)
          else pkt.Hw.Interconnect.data
        in
        write_packet inst.node.Hw.Mpm.mem ~pfn
          ~src:(pkt.Hw.Interconnect.src - 1000)
          ~tag:pkt.Hw.Interconnect.tag data;
        Signals.signal_page inst ~pfn ~offset:0);
    t

  let tx_dropped t = t.tx_dropped
end
