(** Event trace of Cache Kernel activity: tests validate protocol
    sequences against it (e.g. Figure 2's six steps), examples narrate
    runs with it.  Off by default. *)

type event =
  | Fault_trap of { thread : Oid.t; va : int; kind : string }
  | Forward_to_kernel of { thread : Oid.t; kernel : Oid.t }
  | Handler_running of { thread : Oid.t }
  | Mapping_loaded of { space : Oid.t; va : int; pfn : int }
  | Exception_complete of { thread : Oid.t }
  | Thread_resumed of { thread : Oid.t }
  | Object_loaded of { oid : Oid.t }
  | Object_written_back of { oid : Oid.t; to_kernel : Oid.t }
  | Mapping_written_back of { space : Oid.t; va : int; to_kernel : Oid.t }
  | Signal_delivered of { thread : Oid.t; va : int; fast_path : bool }
  | Signal_queued of { thread : Oid.t; va : int }
  | Trap_forwarded of { thread : Oid.t; kernel : Oid.t }
  | Thread_preempted of { thread : Oid.t; cpu : int }
  | Thread_dispatched of { thread : Oid.t; cpu : int }
  | Quota_exceeded of { kernel : Oid.t; cpu : int }
  | Consistency_flush of { pfn : int }
  | Custom of string

val pp_event : event Fmt.t

type entry = { time : Hw.Cost.cycles; event : event }

type t

val create : ?enabled:bool -> unit -> t
val enable : t -> unit
val disable : t -> unit
val clear : t -> unit
val record : t -> time:Hw.Cost.cycles -> event -> unit

val events : t -> event list
(** Events in chronological order. *)

val entries : t -> entry list
val pp : t Fmt.t
