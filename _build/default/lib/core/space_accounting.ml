(* Space-overhead accounting (section 5.2, experiment C4).

   The paper's argument: mapping descriptors are 16 bytes per 4 KB page —
   as little as 0.4 % overhead on the space they map; page tables add about
   half as much again under reasonable clustering; first- and second-level
   tables cost about 5 KB per address space. *)

type report = {
  mapped_pages : int;
  mapped_bytes : int;
  mapping_descriptor_bytes : int; (* 16-byte dependency records *)
  page_table_bytes : int;
  kernel_descriptor_bytes : int;
  space_descriptor_bytes : int;
  thread_descriptor_bytes : int;
  descriptor_overhead_percent : float; (* mapping descriptors / mapped bytes *)
  total_overhead_percent : float; (* all structures / mapped bytes *)
}

let measure (t : Instance.t) =
  let cfg = t.Instance.config in
  let mapped_pages = Mappings.live t.Instance.mappings in
  let mapped_bytes = mapped_pages * Hw.Addr.page_size in
  let mapping_descriptor_bytes =
    Mappings.dependency_records t.Instance.mappings * cfg.Config.mapping_desc_bytes
  in
  let page_table_bytes =
    Caches.Space_cache.fold t.Instance.spaces
      (fun acc sp -> acc + Hw.Page_table.space_bytes sp.Space_obj.table)
      0
  in
  let kernel_descriptor_bytes =
    Caches.Kernel_cache.live t.Instance.kernels * cfg.Config.kernel_desc_bytes
  in
  let space_descriptor_bytes =
    Caches.Space_cache.live t.Instance.spaces * cfg.Config.space_desc_bytes
  in
  let thread_descriptor_bytes =
    Caches.Thread_cache.live t.Instance.threads * cfg.Config.thread_desc_bytes
  in
  let pct n =
    if mapped_bytes = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int mapped_bytes
  in
  {
    mapped_pages;
    mapped_bytes;
    mapping_descriptor_bytes;
    page_table_bytes;
    kernel_descriptor_bytes;
    space_descriptor_bytes;
    thread_descriptor_bytes;
    descriptor_overhead_percent = pct mapping_descriptor_bytes;
    total_overhead_percent =
      pct
        (mapping_descriptor_bytes + page_table_bytes + kernel_descriptor_bytes
       + space_descriptor_bytes + thread_descriptor_bytes);
  }

let pp ppf r =
  Fmt.pf ppf
    "mapped: %d pages (%d KB)@;\
     mapping descriptors: %d B (%.2f%% of mapped space)@;\
     page tables: %d B@;\
     kernel/space/thread descriptors: %d/%d/%d B@;\
     total overhead: %.2f%%"
    r.mapped_pages (r.mapped_bytes / 1024) r.mapping_descriptor_bytes
    r.descriptor_overhead_percent r.page_table_bytes r.kernel_descriptor_bytes
    r.space_descriptor_bytes r.thread_descriptor_bytes r.total_overhead_percent
