(* Writeback records.

   When the Cache Kernel displaces an object (or an application kernel
   explicitly unloads one), the object's state is written back to its owning
   kernel over a writeback channel — the analogue of a dirty cache line
   going back to memory.  The records carry everything the application
   kernel needs to update its own descriptors and reload the object later:
   for mappings, the current referenced/modified bits (used to decide
   whether the page must go to backing store before the frame is reused);
   for threads, the saved execution state. *)

type reason =
  | Displaced (* evicted to make room for another load *)
  | Requested (* explicit unload by the owning kernel *)
  | Dependent (* unloaded because an object it depends on was unloaded *)
  | Exited (* thread finished execution *)
  | Consistency (* flushed for multi-mapping consistency *)

let pp_reason ppf = function
  | Displaced -> Fmt.string ppf "displaced"
  | Requested -> Fmt.string ppf "requested"
  | Dependent -> Fmt.string ppf "dependent"
  | Exited -> Fmt.string ppf "exited"
  | Consistency -> Fmt.string ppf "consistency"

type mapping_state = {
  va : int;
  pfn : int;
  flags : Hw.Page_table.flags;
  referenced : bool;
  modified : bool;
  had_signal_thread : bool;
}

type record =
  | Mapping_wb of { space : Oid.t; space_tag : int; state : mapping_state; reason : reason }
  | Thread_wb of {
      oid : Oid.t; (* now-stale identifier, for correlation *)
      tag : int;
      priority : int;
      state : Thread_obj.saved;
      reason : reason;
    }
  | Space_wb of { oid : Oid.t; tag : int; reason : reason }
  | Kernel_wb of { oid : Oid.t; name : string; reason : reason }

let pp_record ppf = function
  | Mapping_wb { space; state; reason; _ } ->
    Fmt.pf ppf "mapping %a va=%a pfn=%d r=%b m=%b (%a)" Oid.pp space Hw.Addr.pp_addr
      state.va state.pfn state.referenced state.modified pp_reason reason
  | Thread_wb { oid; tag; reason; _ } ->
    Fmt.pf ppf "thread %a tag=%d (%a)" Oid.pp oid tag pp_reason reason
  | Space_wb { oid; tag; reason } ->
    Fmt.pf ppf "space %a tag=%d (%a)" Oid.pp oid tag pp_reason reason
  | Kernel_wb { oid; name; reason } ->
    Fmt.pf ppf "kernel %a %s (%a)" Oid.pp oid name pp_reason reason
