(** Processor-percentage accounting (section 4.3): consumption is charged
    against the owning kernel with a premium for high-priority execution
    and a discount for low, and a kernel exceeding its per-processor
    allocation is demoted to run only when the processor is otherwise
    idle, until the accounting epoch rolls over. *)

val base_priority : int
(** Charging is flat here; premium above, discount below. *)

val premium_percent : priority:int -> int
(** Percentage multiplier applied to CPU charges at a priority. *)

val charge :
  Kernel_obj.t ->
  cpu:int ->
  priority:int ->
  cycles:Hw.Cost.cycles ->
  elapsed:Hw.Cost.cycles ->
  grace:Hw.Cost.cycles ->
  bool
(** Account execution; returns true if the kernel was *newly* demoted on
    that CPU. *)

val reset_epoch : Kernel_obj.t -> unit
val consumed_fraction : Kernel_obj.t -> cpu:int -> elapsed:int -> float
