(** Cache Kernel object identifiers: generation-tagged slot names.

    A new identifier is assigned each time an object is loaded (section 2),
    so a stale identifier — the object was written back, perhaps the slot
    reused — fails validation and the application kernel retries after
    reloading.  Application kernels keep their own stable names (e.g. UNIX
    pids) and treat these identifiers purely as cache handles. *)

type kind = Kernel | Space | Thread

val pp_kind : kind Fmt.t

type t = { kind : kind; slot : int; gen : int }

val v : kind:kind -> slot:int -> gen:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t

val none : t
(** A never-valid identifier, for fields not yet bound. *)

val is_none : t -> bool
