(** Writeback records: the state of a displaced or unloaded object, sent to
    its owning application kernel over the writeback channel — the analogue
    of a dirty cache line going back to memory.  For mappings, the
    referenced/modified bits tell the application kernel whether the page
    must reach backing store before the frame is reused; for threads, the
    saved execution state allows a later reload. *)

type reason =
  | Displaced  (** evicted to make room for another load *)
  | Requested  (** explicit unload by the owning kernel *)
  | Dependent  (** an object it depends on was unloaded (Figure 6) *)
  | Exited  (** thread finished execution *)
  | Consistency  (** flushed for multi-mapping consistency *)

val pp_reason : reason Fmt.t

type mapping_state = {
  va : int;
  pfn : int;
  flags : Hw.Page_table.flags;
  referenced : bool;
  modified : bool;
  had_signal_thread : bool;
}

type record =
  | Mapping_wb of { space : Oid.t; space_tag : int; state : mapping_state; reason : reason }
  | Thread_wb of {
      oid : Oid.t;
      tag : int;
      priority : int;
      state : Thread_obj.saved;
      reason : reason;
    }
  | Space_wb of { oid : Oid.t; tag : int; reason : reason }
  | Kernel_wb of { oid : Oid.t; name : string; reason : reason }

val pp_record : record Fmt.t
