(* Kernel descriptors.

   A kernel object designates an application kernel: its trap and exception
   handlers, and the resources it has been allocated — the physical page
   groups it may map (a two-bit-per-group memory access array), the
   percentage of each processor its threads may consume, the maximum
   priority it may specify, and its locked-object quota (section 2.4,
   section 4.3).

   Handlers are OCaml closures: the simulation analogue of the handler
   entry points recorded in the descriptor.  They execute as
   application-kernel frames of the faulting/trapping thread, so all their
   activity is charged to that thread on its CPU, exactly like the
   prototype's vertical forwarding. *)

type mem_access = No_access | Read_only | Read_write

let pp_mem_access ppf = function
  | No_access -> Fmt.string ppf "none"
  | Read_only -> Fmt.string ppf "ro"
  | Read_write -> Fmt.string ppf "rw"

type fault_ctx = {
  thread : Oid.t;
  va : int;
  access : Hw.Mmu.access;
  kind : Hw.Mmu.fault_kind;
}

type handlers = {
  on_fault : fault_ctx -> unit;
      (* page-fault / exception handler: runs as a kernel-mode frame of the
         faulting thread (Figure 2 step 3); loads a mapping and returns, or
         takes application-defined recovery action *)
  on_trap : Oid.t -> Hw.Exec.payload -> Hw.Exec.payload;
      (* "system call" handler for threads of this kernel; the result is
         delivered as the trap's return value *)
  on_writeback : unit -> unit;
      (* notification that the writeback channel has grown; state is read
         by draining [writebacks] *)
}

let null_handlers =
  {
    on_fault = (fun _ -> ());
    on_trap = (fun _ p -> p);
    on_writeback = ignore;
  }

(** Load-time specification of an application kernel. *)
type spec = {
  name : string;
  handlers : handlers;
  cpu_percent : int array; (* allocation per processor, 0-100 *)
  max_priority : int;
  max_locked : int;
}

type t = {
  mutable oid : Oid.t;
  name : string;
  handlers : handlers;
  mem_access : mem_access array; (* per page group *)
  cpu_percent : int array;
  mutable max_priority : int;
  mutable max_locked : int;
  mutable space : Oid.t; (* the kernel's own address space, once loaded *)
  writebacks : Wb.record Queue.t;
  mutable locked : bool;
  mutable locked_count : int; (* locked objects currently loaded *)
  (* processor-percentage accounting, reset each quota epoch *)
  consumed : Hw.Cost.cycles array; (* premium-weighted cycles per CPU *)
  demoted : bool array; (* over quota on CPU i: run only when idle *)
  mutable recently_used : bool;
}

let create ~n_cpus ~n_groups (spec : spec) =
  if Array.length spec.cpu_percent <> n_cpus then
    invalid_arg "Kernel_obj.create: cpu_percent must have one entry per CPU";
  {
    oid = Oid.none;
    name = spec.name;
    handlers = spec.handlers;
    mem_access = Array.make n_groups No_access;
    cpu_percent = Array.copy spec.cpu_percent;
    max_priority = spec.max_priority;
    max_locked = spec.max_locked;
    space = Oid.none;
    writebacks = Queue.create ();
    locked = false;
    locked_count = 0;
    consumed = Array.make n_cpus 0;
    demoted = Array.make n_cpus false;
    recently_used = true;
  }

(** Can this kernel map physical page [pfn] with [access]? — the check
    performed on every mapping load against the memory access array. *)
let may_map t ~pfn ~write =
  let g = Hw.Addr.group_of_page pfn in
  if g < 0 || g >= Array.length t.mem_access then false
  else
    match t.mem_access.(g) with
    | No_access -> false
    | Read_only -> not write
    | Read_write -> true

(** Grant or revoke access to page group [group]; only the system resource
    manager may invoke the operation that reaches this. *)
let set_access t ~group access =
  if group < 0 || group >= Array.length t.mem_access then
    invalid_arg "Kernel_obj.set_access: bad group";
  t.mem_access.(group) <- access

(** Bytes of the memory access array: two bits per page group (the paper's
    two-kilobyte array covers four gigabytes of physical memory). *)
let access_array_bytes t = (Array.length t.mem_access + 3) / 4

let pp ppf t =
  Fmt.pf ppf "%a %s maxprio=%d locked=%d/%d wb=%d" Oid.pp t.oid t.name t.max_priority
    t.locked_count t.max_locked (Queue.length t.writebacks)
