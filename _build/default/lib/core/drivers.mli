(** Cache Kernel device drivers (section 2.2).

    Devices appear to application kernels as memory-based messaging: a
    client stages a packet in a buffer page and writes the buffer's frame
    number into a message-mode doorbell page ("the signal address
    indicating the packet buffer to transmit"); reception deposits packets
    into reception pages and raises address-valued signals there.

    {!Fiber} is the memory-mapped class (a tiny driver, like the
    prototype's 276-line fiber-channel driver); {!Ethernet} adapts a
    conventional DMA chip to the same interface with visibly more
    mechanism — the contrast the paper draws. *)

val hdr_dst : int
val hdr_tag : int
val hdr_len : int
val payload_off : int
val max_payload : int

val read_packet : Hw.Phys_mem.t -> pfn:int -> int * int * Bytes.t
(** (destination, tag, payload) from a staged packet page. *)

val write_packet : Hw.Phys_mem.t -> pfn:int -> src:int -> tag:int -> Bytes.t -> unit

module Fiber : sig
  type t

  val attach : Instance.t -> Hw.Nic.Fiber.t -> tx_pfn:int -> rx_pfns:int array -> t
  (** Install the driver: transmissions on doorbell writes to [tx_pfn],
      receptions round-robin into [rx_pfns] with signals on the page. *)
end

module Ethernet : sig
  type t

  val attach :
    Instance.t ->
    Hw.Nic.Ethernet.t ->
    tx_pfn:int ->
    rx_pfns:int array ->
    dma_pfns:int array ->
    t
  (** Install the driver with a DMA descriptor ring over [dma_pfns]. *)

  val tx_dropped : t -> int
end
