lib/core/space_accounting.mli: Fmt Instance
