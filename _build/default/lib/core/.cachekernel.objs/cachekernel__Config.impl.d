lib/core/config.ml: Hw
