lib/core/mappings.ml: Array Fun Hashtbl Hw List Oid
