lib/core/api.mli: Fmt Hw Instance Kernel_obj Oid Thread_obj
