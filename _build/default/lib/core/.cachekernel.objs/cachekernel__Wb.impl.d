lib/core/wb.ml: Fmt Hw Oid Thread_obj
