lib/core/engine.mli: Instance
