lib/core/oid.mli: Fmt
