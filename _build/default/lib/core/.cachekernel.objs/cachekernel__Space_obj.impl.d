lib/core/space_obj.ml: Fmt Hw Oid
