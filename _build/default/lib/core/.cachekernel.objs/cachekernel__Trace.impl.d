lib/core/trace.ml: Fmt Hw List Oid
