lib/core/stats.ml: Fmt Oid
