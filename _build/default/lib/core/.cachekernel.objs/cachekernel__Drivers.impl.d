lib/core/drivers.ml: Array Bytes Hashtbl Hw Instance Signals
