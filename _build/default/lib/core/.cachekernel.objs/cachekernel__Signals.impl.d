lib/core/signals.ml: Caches Config Hashtbl Hw Instance List Mappings Oid Stats Thread_obj Trace
