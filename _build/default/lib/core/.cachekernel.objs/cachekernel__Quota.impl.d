lib/core/quota.ml: Array Kernel_obj
