lib/core/api.ml: Array Caches Config Fmt Hw Instance Kernel_obj Mappings Oid Quota Replacement Result Scheduler Signals Space_obj Stats Thread_obj Trace Wb
