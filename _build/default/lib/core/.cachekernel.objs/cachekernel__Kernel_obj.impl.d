lib/core/kernel_obj.ml: Array Fmt Hw Oid Queue Wb
