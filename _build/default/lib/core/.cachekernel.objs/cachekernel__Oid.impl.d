lib/core/oid.ml: Fmt Hashtbl Stdlib
