lib/core/quota.mli: Hw Kernel_obj
