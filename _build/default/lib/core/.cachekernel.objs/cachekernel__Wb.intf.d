lib/core/wb.mli: Fmt Hw Oid Thread_obj
