lib/core/instance.ml: Array Caches Config Hashtbl Hw Kernel_obj Mappings Oid Queue Scheduler Stats Thread_obj Trace
