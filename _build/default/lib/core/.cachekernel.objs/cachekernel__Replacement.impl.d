lib/core/replacement.ml: Array Caches Config Hw Instance Kernel_obj List Mappings Oid Space_obj Stats Thread_obj Trace Wb
