lib/core/scheduler.ml: Array Oid Queue
