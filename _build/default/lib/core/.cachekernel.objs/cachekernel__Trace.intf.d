lib/core/trace.mli: Fmt Hw Oid
