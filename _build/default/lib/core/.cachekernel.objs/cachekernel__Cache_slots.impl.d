lib/core/cache_slots.ml: Array Fun List Oid
