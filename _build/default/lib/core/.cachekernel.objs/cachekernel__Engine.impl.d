lib/core/engine.ml: Api Array Caches Config Effect Fmt Fun Hw Instance Kernel_obj List Logs Mappings Oid Option Printexc Queue Quota Replacement Scheduler Signals Space_obj Stats Thread_obj Trace Wb
