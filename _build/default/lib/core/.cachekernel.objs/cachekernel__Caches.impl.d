lib/core/caches.ml: Cache_slots Kernel_obj Oid Space_obj Thread_obj
