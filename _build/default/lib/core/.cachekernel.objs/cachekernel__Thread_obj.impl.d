lib/core/thread_obj.ml: Fmt Hw List Oid Queue
