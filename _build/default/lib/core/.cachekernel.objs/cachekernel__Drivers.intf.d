lib/core/drivers.mli: Bytes Hw Instance
