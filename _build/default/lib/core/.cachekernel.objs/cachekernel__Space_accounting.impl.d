lib/core/space_accounting.ml: Caches Config Fmt Hw Instance Mappings Space_obj
