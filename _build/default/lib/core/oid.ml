(* Cache Kernel object identifiers.

   An identifier is returned when an object is loaded and names it until it
   is written back; "a new identifier is assigned each time an object is
   loaded" (section 2), which we realise with a generation counter per slot.
   A stale identifier (object written back and the slot reused) fails
   validation, and the application kernel retries after reloading — the
   behaviour section 2 describes for a thread loaded against a concurrently
   written-back address space. *)

type kind = Kernel | Space | Thread

let pp_kind ppf = function
  | Kernel -> Fmt.string ppf "kernel"
  | Space -> Fmt.string ppf "space"
  | Thread -> Fmt.string ppf "thread"

type t = { kind : kind; slot : int; gen : int }

let v ~kind ~slot ~gen = { kind; slot; gen }
let equal a b = a.kind = b.kind && a.slot = b.slot && a.gen = b.gen
let compare = Stdlib.compare
let hash = Hashtbl.hash
let pp ppf t = Fmt.pf ppf "%a#%d.%d" pp_kind t.kind t.slot t.gen

(** A never-valid identifier, for fields not yet bound. *)
let none = { kind = Kernel; slot = -1; gen = -1 }

let is_none t = t.slot < 0
