(* Event trace of Cache Kernel activity.

   Tests use this to validate protocol sequences (e.g. the six steps of
   Figure 2's page-fault handling) and examples use it to narrate runs.
   Tracing is off by default; when enabled, events carry the simulated
   timestamp of the CPU that generated them. *)

type event =
  | Fault_trap of { thread : Oid.t; va : int; kind : string } (* Figure 2 step 1 *)
  | Forward_to_kernel of { thread : Oid.t; kernel : Oid.t } (* step 2 *)
  | Handler_running of { thread : Oid.t } (* step 3 *)
  | Mapping_loaded of { space : Oid.t; va : int; pfn : int } (* step 4 *)
  | Exception_complete of { thread : Oid.t } (* step 5 *)
  | Thread_resumed of { thread : Oid.t } (* step 6 *)
  | Object_loaded of { oid : Oid.t }
  | Object_written_back of { oid : Oid.t; to_kernel : Oid.t }
  | Mapping_written_back of { space : Oid.t; va : int; to_kernel : Oid.t }
  | Signal_delivered of { thread : Oid.t; va : int; fast_path : bool }
  | Signal_queued of { thread : Oid.t; va : int }
  | Trap_forwarded of { thread : Oid.t; kernel : Oid.t }
  | Thread_preempted of { thread : Oid.t; cpu : int }
  | Thread_dispatched of { thread : Oid.t; cpu : int }
  | Quota_exceeded of { kernel : Oid.t; cpu : int }
  | Consistency_flush of { pfn : int }
  | Custom of string

let pp_event ppf = function
  | Fault_trap { thread; va; kind } ->
    Fmt.pf ppf "fault-trap %a va=%a (%s)" Oid.pp thread Hw.Addr.pp_addr va kind
  | Forward_to_kernel { thread; kernel } ->
    Fmt.pf ppf "forward %a -> %a" Oid.pp thread Oid.pp kernel
  | Handler_running { thread } -> Fmt.pf ppf "handler-running %a" Oid.pp thread
  | Mapping_loaded { space; va; pfn } ->
    Fmt.pf ppf "mapping-loaded %a va=%a pfn=%d" Oid.pp space Hw.Addr.pp_addr va pfn
  | Exception_complete { thread } -> Fmt.pf ppf "exception-complete %a" Oid.pp thread
  | Thread_resumed { thread } -> Fmt.pf ppf "thread-resumed %a" Oid.pp thread
  | Object_loaded { oid } -> Fmt.pf ppf "loaded %a" Oid.pp oid
  | Object_written_back { oid; to_kernel } ->
    Fmt.pf ppf "writeback %a -> %a" Oid.pp oid Oid.pp to_kernel
  | Mapping_written_back { space; va; to_kernel } ->
    Fmt.pf ppf "mapping-writeback %a va=%a -> %a" Oid.pp space Hw.Addr.pp_addr va Oid.pp
      to_kernel
  | Signal_delivered { thread; va; fast_path } ->
    Fmt.pf ppf "signal %a va=%a%s" Oid.pp thread Hw.Addr.pp_addr va
      (if fast_path then " (rtlb)" else "")
  | Signal_queued { thread; va } ->
    Fmt.pf ppf "signal-queued %a va=%a" Oid.pp thread Hw.Addr.pp_addr va
  | Trap_forwarded { thread; kernel } ->
    Fmt.pf ppf "trap-forward %a -> %a" Oid.pp thread Oid.pp kernel
  | Thread_preempted { thread; cpu } -> Fmt.pf ppf "preempt %a cpu%d" Oid.pp thread cpu
  | Thread_dispatched { thread; cpu } -> Fmt.pf ppf "dispatch %a cpu%d" Oid.pp thread cpu
  | Quota_exceeded { kernel; cpu } ->
    Fmt.pf ppf "quota-exceeded %a cpu%d" Oid.pp kernel cpu
  | Consistency_flush { pfn } -> Fmt.pf ppf "consistency-flush pfn=%d" pfn
  | Custom s -> Fmt.string ppf s

type entry = { time : Hw.Cost.cycles; event : event }

type t = { mutable enabled : bool; mutable entries : entry list }

let create ?(enabled = false) () = { enabled; entries = [] }
let enable t = t.enabled <- true
let disable t = t.enabled <- false
let clear t = t.entries <- []

let record t ~time event =
  if t.enabled then t.entries <- { time; event } :: t.entries

(** Events in chronological order. *)
let events t = List.rev_map (fun e -> e.event) t.entries

let entries t = List.rev t.entries

let pp ppf t =
  List.iter
    (fun { time; event } ->
      Fmt.pf ppf "[%8.2fus] %a@." (Hw.Cost.us_of_cycles time) pp_event event)
    (entries t)
