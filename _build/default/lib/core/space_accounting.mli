(** Space-overhead accounting for experiment C4 (section 5.2): how many
    bytes of descriptors and page tables the currently loaded state costs,
    relative to the memory it maps. *)

type report = {
  mapped_pages : int;
  mapped_bytes : int;
  mapping_descriptor_bytes : int;  (** 16-byte dependency records *)
  page_table_bytes : int;
  kernel_descriptor_bytes : int;
  space_descriptor_bytes : int;
  thread_descriptor_bytes : int;
  descriptor_overhead_percent : float;
  total_overhead_percent : float;
}

val measure : Instance.t -> report
val pp : report Fmt.t
