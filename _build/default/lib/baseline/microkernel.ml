(* V-style micro-kernel baseline: copy-based IPC through the kernel.

   The contrast of section 2.2: in conventional micro-kernels, interprocess
   communication moves data through the kernel — a trap, a copyin to a
   kernel buffer, a scheduling hand-off to the receiver, a copyout, and the
   same again for the reply.  "Communication performance is limited ...
   [by] the software overhead of copying, queuing and delivering messages."
   Memory-based messaging removes the kernel from the data path entirely;
   this baseline is the other side of experiment X2's comparison. *)

type Hw.Exec.payload +=
  | Send of int * int list (* port, message words *)
  | Receive of int (* port *)
  | Reply of int * int list
  | Msg of int list
  | Ret_unit

let c_decode = 200
let c_queue = 150 (* enqueue/dequeue a message descriptor *)
let c_copy_per_word = 3 (* copyin or copyout, per word *)

type port = {
  mutable queue : int list list;
  mutable waiting : Runtime.thread list;
  mutable replies : int list list;
  mutable reply_waiting : Runtime.thread list;
}

type t = {
  rt : Runtime.t;
  ports : (int, port) Hashtbl.t;
  mutable messages : int;
}

let port_of t pid =
  match Hashtbl.find_opt t.ports pid with
  | Some p -> p
  | None ->
    let p = { queue = []; waiting = []; replies = []; reply_waiting = [] } in
    Hashtbl.replace t.ports pid p;
    p

let rec create () =
  let t = { rt = Runtime.create (); ports = Hashtbl.create 8; messages = 0 } in
  t.rt.Runtime.syscall <- (fun rt th p -> service t rt th p);
  t

and service t rt (th : Runtime.thread) payload =
  match payload with
  | Send (pid, words) ->
    let port = port_of t pid in
    t.messages <- t.messages + 1;
    (* copyin, queue, wake the receiver *)
    Runtime.charge rt (c_decode + c_queue + (c_copy_per_word * List.length words));
    port.queue <- port.queue @ [ words ];
    List.iter Runtime.wake port.waiting;
    port.waiting <- [];
    Some Ret_unit
  | Receive pid -> (
    let port = port_of t pid in
    Runtime.charge rt (c_decode + c_queue);
    match port.queue with
    | words :: rest ->
      port.queue <- rest;
      (* copyout to the receiver plus a scheduling hand-off *)
      Runtime.charge rt ((c_copy_per_word * List.length words) + Hw.Cost.context_switch);
      Some (Msg words)
    | [] ->
      port.waiting <- th :: port.waiting;
      None)
  | Reply (pid, words) ->
    let port = port_of t pid in
    Runtime.charge rt (c_decode + c_queue + (c_copy_per_word * List.length words));
    port.replies <- port.replies @ [ words ];
    List.iter Runtime.wake port.reply_waiting;
    port.reply_waiting <- [];
    Some Ret_unit
  | other -> Some other

(* -- Client/server stubs -- *)

let send port words = ignore (Hw.Exec.trap (Send (port, words)))

let receive port =
  match Hw.Exec.trap (Receive port) with Msg words -> words | _ -> []

(** Synchronous RPC as a client would see it: send the request and receive
    the reply on the paired reply port. *)
let call ~port words =
  send port words;
  receive (port + 1)

(** One server exchange: receive on [port], compute [handle], reply. *)
let serve_one ~port ~handle =
  let req = receive port in
  let rsp = handle req in
  send (port + 1) rsp
