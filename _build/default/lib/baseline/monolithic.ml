(* Monolithic kernel baseline.

   Conventional structure: a fixed, compiled-in process table (the source
   of the "hard errors" the Cache Kernel eliminates — section 7: "an
   application never encounters the hard error of the kernel running out
   of thread or address space descriptors as can occur with conventional
   systems like UNIX"), and system calls serviced synchronously inside the
   kernel at trap time — which is also why its null system call is cheaper
   than the Cache Kernel's forwarded one (section 5.3 compares against
   Mach 2.5's 25 us getpid). *)

type Hw.Exec.payload +=
  | Getpid
  | Fork (* allocate a process-table slot *)
  | Exit_proc of int
  | Pipe_write of int * int list (* pipe id, words *)
  | Pipe_read of int
  | Pipe_data of int list
  | Ret of int
  | Err_again (* EAGAIN: process table full *)

(* Service-time constants: decode + table work for a 68040-era monolithic
   kernel, tuned so the null syscall lands near Mach 2.5's measurement. *)
let c_decode = 220
let c_table = 120
let c_pipe_setup = 260
let c_copy_per_word = 3 (* copyin + copyout *)

type pipe = { mutable data : int list list; mutable readers : Runtime.thread list }

type t = {
  rt : Runtime.t;
  nproc : int;
  mutable used_slots : int;
  mutable eagains : int;
  pipes : (int, pipe) Hashtbl.t;
  mutable next_pid : int;
}

let rec create ?(nproc = 64) () =
  let t =
    {
      rt = Runtime.create ();
      nproc;
      used_slots = 0;
      eagains = 0;
      pipes = Hashtbl.create 8;
      next_pid = 100;
    }
  in
  t.rt.Runtime.syscall <- (fun rt th p -> service t rt th p);
  t

and service t rt (th : Runtime.thread) payload =
  match payload with
  | Getpid ->
    Runtime.charge rt (c_decode + c_table);
    Some (Ret th.Runtime.id)
  | Fork ->
    Runtime.charge rt (c_decode + (3 * c_table));
    if t.used_slots >= t.nproc then begin
      t.eagains <- t.eagains + 1;
      Some Err_again
    end
    else begin
      t.used_slots <- t.used_slots + 1;
      t.next_pid <- t.next_pid + 1;
      Some (Ret t.next_pid)
    end
  | Exit_proc _ ->
    Runtime.charge rt (c_decode + c_table);
    t.used_slots <- max 0 (t.used_slots - 1);
    Some (Ret 0)
  | Pipe_write (pid, words) ->
    let pipe =
      match Hashtbl.find_opt t.pipes pid with
      | Some p -> p
      | None ->
        let p = { data = []; readers = [] } in
        Hashtbl.replace t.pipes pid p;
        p
    in
    (* copyin to the kernel buffer *)
    Runtime.charge rt (c_decode + c_pipe_setup + (c_copy_per_word * List.length words));
    pipe.data <- pipe.data @ [ words ];
    List.iter Runtime.wake pipe.readers;
    pipe.readers <- [];
    Some (Ret (List.length words))
  | Pipe_read pid -> (
    let pipe =
      match Hashtbl.find_opt t.pipes pid with
      | Some p -> p
      | None ->
        let p = { data = []; readers = [] } in
        Hashtbl.replace t.pipes pid p;
        p
    in
    Runtime.charge rt (c_decode + c_pipe_setup);
    match pipe.data with
    | words :: rest ->
      pipe.data <- rest;
      (* copyout to the caller *)
      Runtime.charge rt (c_copy_per_word * List.length words);
      Some (Pipe_data words)
    | [] ->
      pipe.readers <- th :: pipe.readers;
      None (* block; trap retried after a writer wakes us *))
  | other -> Some other

(* -- Convenience stubs for baseline programs -- *)

let getpid () = match Hw.Exec.trap Getpid with Ret pid -> pid | _ -> -1

let fork () =
  match Hw.Exec.trap Fork with
  | Ret pid -> Ok pid
  | Err_again -> Error `Again
  | _ -> Error `Again

let exit_proc code = ignore (Hw.Exec.trap (Exit_proc code))
let pipe_write pid words = ignore (Hw.Exec.trap (Pipe_write (pid, words)))

let pipe_read pid =
  match Hw.Exec.trap (Pipe_read pid) with Pipe_data words -> words | _ -> []
