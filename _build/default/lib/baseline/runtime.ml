(* Minimal execution runtime for the baseline (comparator) kernels.

   The paper compares the Cache Kernel against conventional monolithic
   kernels (Ultrix, SunOS, Mach 2.5's UNIX server path).  The baselines
   only need to regenerate *cost shapes* — trap/syscall latency, copy-based
   IPC cost versus message size, static-table exhaustion — so they run on a
   single-CPU cooperative runtime over the same {!Hw.Exec} instruction
   streams and the same hardware cost constants, with kernel services
   executed synchronously at trap time (exactly what makes them monolithic:
   no forwarding, no user-level policy, no writeback). *)

type thread = {
  id : int;
  mutable status : Hw.Exec.status;
  mutable blocked : bool;
  mutable exited : bool;
}

type t = {
  clock : Hw.Sim_clock.t;
  mutable threads : thread list;
  mutable next_id : int;
  mutable syscall : t -> thread -> Hw.Exec.payload -> Hw.Exec.payload option;
      (* [None] means the thread blocks; the trap is retried when woken *)
  mutable switches : int;
}

let create () =
  {
    clock = Hw.Sim_clock.create ();
    threads = [];
    next_id = 1;
    syscall = (fun _ _ p -> Some p);
    switches = 0;
  }

let charge t c = Hw.Sim_clock.advance t.clock c
let now_us t = Hw.Sim_clock.us t.clock

let spawn t body =
  let th =
    { id = t.next_id; status = Hw.Exec.start body; blocked = false; exited = false }
  in
  t.next_id <- t.next_id + 1;
  t.threads <- t.threads @ [ th ];
  th

let wake (th : thread) = th.blocked <- false

(* One step of one thread.  Memory effects are not supported here — the
   baselines express their data movement as kernel-side copy charges. *)
let step t (th : thread) =
  match th.status with
  | Hw.Exec.Done _ | Hw.Exec.Failed _ -> th.exited <- true
  | Hw.Exec.On_compute (n, k) ->
    charge t n;
    th.status <- Effect.Deep.continue k ()
  | Hw.Exec.On_time k -> th.status <- Effect.Deep.continue k (now_us t)
  | Hw.Exec.On_trap (p, k) -> (
    charge t Hw.Cost.trap_entry;
    match t.syscall t th p with
    | Some reply ->
      charge t Hw.Cost.trap_exit;
      th.status <- Effect.Deep.continue k reply
    | None -> th.blocked <- true (* retried when woken *))
  | Hw.Exec.On_read _ | Hw.Exec.On_write _ ->
    th.status <- Hw.Exec.Failed (Failure "baseline runtime has no virtual memory")

(** Cooperative round-robin until every thread exits or blocks. *)
let run ?(max_steps = 10_000_000) t =
  let steps = ref 0 in
  let progress = ref true in
  while !progress && !steps < max_steps do
    progress := false;
    List.iter
      (fun th ->
        if (not th.exited) && not th.blocked then begin
          t.switches <- t.switches + 1;
          step t th;
          incr steps;
          progress := true
        end)
      t.threads;
    t.threads <- List.filter (fun th -> not th.exited) t.threads
  done
