lib/baseline/microkernel.ml: Hashtbl Hw List Runtime
