lib/baseline/runtime.ml: Effect Hw List
