lib/baseline/monolithic.ml: Hashtbl Hw List Runtime
