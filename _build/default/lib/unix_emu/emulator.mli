(** The UNIX emulator: an operating system kernel in user mode (section 2).

    Keeps its own process table with stable pids (Cache Kernel identifiers
    change across reloads), executes processes by loading an address space
    and a thread, pages program text from backing store on demand, puts
    sleeping processes off-processor by unloading their threads, and marks
    swapped processes so they consume no Cache Kernel descriptors. *)

open Cachekernel
open Aklib

type t = {
  ak : App_kernel.t;
  procs : (int, Process.t) Hashtbl.t;
  by_tlid : (int, int) Hashtbl.t;
  mutable next_pid : int;
  console : Buffer.t;
  fs : Fs.t;  (** the file system: emulator state, not Cache Kernel state *)
  mutable next_pipe : int;
  mutable spawned : int;
  mutable exited : int;
  mutable syscalls : int;
}

val console : t -> string
val procs : t -> Process.t list
val proc : t -> int -> Process.t option
val proc_of_thread : t -> Oid.t -> Process.t option

val create_process :
  t ->
  ?priority:int ->
  parent:int ->
  ?inherit_from:Process.t ->
  Syscall.program ->
  (Process.t, Api.error) result
(** Create and start a process.  With [inherit_from], the child's data
    segment is a copy-on-write image of the parent's. *)

val wakeup_event : t -> string -> unit
(** Wake every process sleeping on the named event (reloading their
    threads). *)

val kill_process : t -> Process.t -> code:int -> unit

val dispatch : t -> Oid.t -> Hw.Exec.payload -> Hw.Exec.payload
(** The trap handler: decode and execute one system call (runs in the
    trapping thread's handler frame; may block and may unload the very
    thread it serves). *)

val of_app_kernel : App_kernel.t -> t
(** Attach the emulator's dispatch and SEGV policy to a prepared
    application-kernel skeleton (for launching under the SRM). *)

val boot : Instance.t -> groups:int list -> (t, Api.error) result
(** Boot as the first kernel (single-OS configuration). *)

val start_init : t -> Syscall.program -> (Process.t, Api.error) result
(** Launch the first user process. *)
