(** UNIX system-call vocabulary: trap payloads and the libc-like stubs
    programs call from inside simulated threads.

    [spawn] is fork+exec combined (a substitution recorded in DESIGN.md:
    one-shot continuations cannot be duplicated); a spawned child can
    inherit the parent's data segment copy-on-write, which preserves the
    memory behaviour fork-based workloads exercise. *)

type program = {
  name : string;
  main : unit -> int;  (** returns the exit code *)
  text_pages : int;
  data_pages : int;
}

val program : ?text_pages:int -> ?data_pages:int -> string -> (unit -> int) -> program

type Hw.Exec.payload +=
  | Sys_getpid
  | Sys_getppid
  | Sys_spawn of program * bool
  | Sys_exit of int
  | Sys_wait
  | Sys_sbrk of int
  | Sys_sleep of string
  | Sys_wakeup of string
  | Sys_write of string
  | Sys_kill of int * int
  | Sys_nice of int
  | Sys_creat of string
  | Sys_open of string
  | Sys_close of int
  | Sys_read_file of int * int
  | Sys_write_file of int * string
  | Sys_pipe
  | Ret_int of int
  | Ret_pair of int * int
  | Ret_unit
  | Ret_str of string
  | Ret_would_block
  | Ret_error of string

val sigkill : int
val sigsegv : int

(** {1 Stubs — call only from inside simulated thread bodies} *)

val getpid : unit -> int
val getppid : unit -> int

val spawn : ?inherit_memory:bool -> program -> int
(** Start a child process; returns its pid. *)

val exit : int -> 'a
(** Terminate the calling process (never returns). *)

val wait : unit -> int * int
(** Wait for a child to exit: (pid, exit code).  Sleeping waits are
    implemented by thread unload/reload (section 2.3). *)

val sbrk : int -> int
(** Grow the data region; returns the previous break. *)

val sleep : string -> unit
(** Sleep on a named event until {!wakeup}; the emulator unloads the
    thread while it sleeps. *)

val wakeup : string -> unit
val write : string -> unit
val kill : int -> int -> unit
val nice : int -> unit
val yield : unit -> unit

(** {1 Files and pipes}

    The open file table lives entirely in the emulator (section 2.3);
    file reads and writes block the calling thread through disk latency. *)

val creat : string -> int
val open_file : string -> int
val close : int -> unit

val read_file : int -> int -> string
(** Read up to [len] bytes; reading an empty pipe sleeps until a writer
    arrives. *)

val write_file : int -> string -> int
val pipe : unit -> int * int

