lib/unix_emu/swapper.ml: Aklib Api App_kernel Backing_store Cachekernel Emulator Frame_alloc Hashtbl Hw Instance List Option Process Segment Segment_mgr Space_obj Thread_lib
