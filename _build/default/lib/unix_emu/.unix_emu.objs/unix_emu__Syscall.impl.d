lib/unix_emu/syscall.ml: Cachekernel Hw
