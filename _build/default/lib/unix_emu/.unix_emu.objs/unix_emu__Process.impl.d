lib/unix_emu/process.ml: Aklib Buffer Fmt Fs Hashtbl Hw
