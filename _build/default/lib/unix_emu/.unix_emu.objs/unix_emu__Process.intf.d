lib/unix_emu/process.mli: Aklib Buffer Fmt Fs Hashtbl Hw
