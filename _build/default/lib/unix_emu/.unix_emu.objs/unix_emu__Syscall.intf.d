lib/unix_emu/syscall.mli: Hw
