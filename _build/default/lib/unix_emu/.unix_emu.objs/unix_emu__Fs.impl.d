lib/unix_emu/fs.ml: Api Array Bytes Cachekernel Hashtbl Hw Instance Signals
