lib/unix_emu/fs.mli: Bytes Cachekernel Hw Instance Oid
