lib/unix_emu/sched.ml: Aklib Api App_kernel Cachekernel Emulator Hashtbl Hw Instance Process Signals Thread_lib Thread_obj
