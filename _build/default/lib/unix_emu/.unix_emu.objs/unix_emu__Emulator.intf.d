lib/unix_emu/emulator.mli: Aklib Api App_kernel Buffer Cachekernel Fs Hashtbl Hw Instance Oid Process Syscall
