(** Per-process state of the UNIX emulator — exactly the state the Cache
    Kernel does {e not} hold (section 2.3): the stable pid, the process
    tree, scheduling accounting, sleep bookkeeping, the memory layout and
    the open file table.  Cache Kernel identifiers are recorded only as
    cache handles. *)

type state = Runnable | Sleeping of string | Swapped | Zombie of int

val pp_state : state Fmt.t

type pipe = { pipe_id : int; buf : Buffer.t; capacity : int }

type fd_state =
  | File of { file : Fs.file; mutable pos : int }
  | Pipe_read_end of pipe
  | Pipe_write_end of pipe

(** Standard address-space layout. *)

val text_base : int
val data_base : int
val stack_base : int
val stack_pages : int
val max_data_pages : int

type t = {
  pid : int;
  parent : int;
  program_name : string;
  vspace : Aklib.Segment_mgr.vspace;
  mutable thread : int;
  text : Aklib.Segment.t;
  data : Aklib.Segment.t;
  stack : Aklib.Segment.t;
  mutable brk_pages : int;
  mutable state : state;
  mutable swapped_from : state option;
  mutable woken : bool;
  mutable children : int list;
  mutable nice : int;
  mutable p_cpu : int;
  mutable last_consumed : Hw.Cost.cycles;
  mutable segv_handler : (unit -> [ `Retry | `Die ]) option;
  mutable exit_code : int option;
  fds : (int, fd_state) Hashtbl.t;
  mutable next_fd : int;
}

val is_zombie : t -> bool
val pp : t Fmt.t
