(* Per-process state kept by the UNIX emulator.

   This is exactly the state the Cache Kernel does *not* hold (section 2.3):
   the stable pid (Cache Kernel thread and space identifiers change every
   reload), the parent/child tree, scheduling accounting for the decay
   policy, sleep bookkeeping and the memory layout.  The emulator records
   the Cache Kernel identifiers only as cache handles. *)

type state =
  | Runnable
  | Sleeping of string (* named event *)
  | Swapped
  | Zombie of int (* exit code *)

(* An in-kernel (emulator) pipe: a bounded byte buffer. *)
type pipe = { pipe_id : int; buf : Buffer.t; capacity : int }

(* One open-file-table entry — "stored only in the application kernel". *)
type fd_state =
  | File of { file : Fs.file; mutable pos : int }
  | Pipe_read_end of pipe
  | Pipe_write_end of pipe

let pp_state ppf = function
  | Runnable -> Fmt.string ppf "runnable"
  | Sleeping e -> Fmt.pf ppf "sleeping(%s)" e
  | Swapped -> Fmt.string ppf "swapped"
  | Zombie c -> Fmt.pf ppf "zombie(%d)" c

(* Standard layout of a process address space. *)
let text_base = 0x00400000
let data_base = 0x10000000
let stack_base = 0x70000000
let stack_pages = 8
let max_data_pages = 1024 (* 4 MB data segment ceiling *)

type t = {
  pid : int;
  parent : int;
  program_name : string;
  vspace : Aklib.Segment_mgr.vspace;
  mutable thread : int; (* Thread_lib id *)
  text : Aklib.Segment.t;
  data : Aklib.Segment.t;
  stack : Aklib.Segment.t;
  mutable brk_pages : int; (* current data region size *)
  mutable state : state;
  mutable swapped_from : state option; (* state to restore at swap-in *)
  mutable woken : bool; (* a wakeup arrived while we were off-processor *)
  mutable children : int list;
  mutable nice : int; (* -20..19, UNIX style *)
  mutable p_cpu : int; (* decaying CPU usage estimate (4.3BSD p_cpu) *)
  mutable last_consumed : Hw.Cost.cycles; (* thread consumption at last decay *)
  mutable segv_handler : (unit -> [ `Retry | `Die ]) option;
  mutable exit_code : int option;
  fds : (int, fd_state) Hashtbl.t; (* the open file table *)
  mutable next_fd : int;
}

let is_zombie t = match t.state with Zombie _ -> true | _ -> false

let pp ppf t =
  Fmt.pf ppf "pid %d (%s) %a nice=%d p_cpu=%d" t.pid t.program_name pp_state t.state
    t.nice t.p_cpu
