(** A small block file system for the UNIX emulator.

    The name table and per-file block lists live in the emulator ("an open
    file table ... stored only in the application kernel", section 2.3);
    only the data blocks live on the simulated disk.  File reads and
    writes block the calling thread through per-extent disk latency; exec
    loads program images from here. *)

open Cachekernel

type file

type t

val create : inst:Instance.t -> disk:Hw.Disk.t -> t

val lookup : t -> string -> file option
val exists : t -> string -> bool
val size : file -> int
val create_file : t -> string -> file

val block_of : t -> file -> int -> int
(** Disk block of a file's page-sized extent (allocated on demand). *)

val write_now : t -> file -> offset:int -> Bytes.t -> unit
(** Host-context write (boot-time population). *)

val read : t -> file -> thread:Oid.t -> offset:int -> len:int -> Bytes.t
(** (handler context) Read, blocking the thread through disk latency. *)

val write : t -> file -> thread:Oid.t -> offset:int -> Bytes.t -> unit

val ls : t -> (string * int) list
val reads : t -> int
val writes : t -> int
