(* The UNIX decay scheduler, running as a locked scheduling thread.

   "The UNIX emulator per-processor scheduling thread wakes up on each
   rescheduling interval, adjusts the priorities of other threads to
   enforce its policies, and goes back to sleep ... The scheduling thread
   is assured of running because it is loaded at high priority and locked
   in the Cache Kernel" (section 2.3).

   The policy is 4.3BSD-flavoured: each interval, a process's CPU usage
   estimate decays and recent consumption is added; priority falls as usage
   rises, so compute-bound processes sink to low priority — which also
   reduces the premium the emulator is charged against its processor quota
   (section 4.3). *)

open Cachekernel
open Aklib

let timer_va = 0x7D000000 (* signal address used by the interval timer *)

type t = {
  emu : Emulator.t;
  interval_us : float;
  mutable ticks : int;
  mutable tid : int option; (* thread-library id of the scheduling thread *)
  mutable stop : bool;
  base_priority : int;
  min_priority : int;
}

(* Map a (p_cpu, nice) pair to a Cache Kernel priority. *)
let priority_of t (p : Process.t) =
  let penalty = (p.Process.p_cpu / 2) + (p.Process.nice / 4) in
  max t.min_priority (min t.base_priority (t.base_priority - penalty))

let decay_pass t =
  let emu = t.emu in
  let inst = emu.Emulator.ak.App_kernel.inst in
  t.ticks <- t.ticks + 1;
  Hashtbl.iter
    (fun _ (p : Process.t) ->
      match p.Process.state with
      | Process.Runnable -> (
        (* consumption since the last tick, read from the loaded thread *)
        let consumed =
          match Thread_lib.oid_of emu.Emulator.ak.App_kernel.threads p.Process.thread with
          | Some oid -> (
            match Instance.find_thread inst oid with
            | Some th -> th.Thread_obj.consumed
            | None -> p.Process.last_consumed)
          | None -> p.Process.last_consumed
        in
        let delta = max 0 (consumed - p.Process.last_consumed) in
        p.Process.last_consumed <- consumed;
        let tick_units = delta / max 1 (Hw.Cost.cycles_of_us t.interval_us / 16) in
        p.Process.p_cpu <- (p.Process.p_cpu / 2) + tick_units;
        let prio = priority_of t p in
        ignore (Thread_lib.set_priority emu.Emulator.ak.App_kernel.threads p.Process.thread prio))
      | _ -> ())
    emu.Emulator.procs;
  Instance.charge inst (50 * max 1 (Hashtbl.length emu.Emulator.procs))

(* Any processes left to schedule?  The scheduling thread retires when the
   system drains so an idle emulator quiesces. *)
let live_processes (emu : Emulator.t) =
  Hashtbl.fold
    (fun _ (p : Process.t) acc -> acc || not (Process.is_zombie p))
    emu.Emulator.procs false

(* The scheduling thread body: decay, arm the timer, sleep on its signal. *)
let body t () =
  let emu = t.emu in
  let inst = emu.Emulator.ak.App_kernel.inst in
  let rec loop () =
    if (not t.stop) && live_processes emu then begin
      decay_pass t;
      (* arm the interval timer: a clock event that signals us *)
      let self_oid () =
        match t.tid with
        | Some id -> Thread_lib.oid_of emu.Emulator.ak.App_kernel.threads id
        | None -> None
      in
      Hw.Mpm.after inst.Instance.node
        ~delay:(Hw.Cost.cycles_of_us t.interval_us)
        (fun () ->
          match self_oid () with
          | Some oid -> (
            match Instance.find_thread inst oid with
            | Some th -> Signals.post_signal inst th ~va:timer_va
            | None -> ())
          | None -> ());
      let rec await () =
        match Hw.Exec.trap Api.Ck_wait_signal with
        | Api.Ck_signal va when va = timer_va -> ()
        | _ -> await ()
      in
      await ();
      loop ()
    end
  in
  loop ()

(** Start the scheduling thread: high priority, locked in the Cache Kernel. *)
let start emu ~interval_us =
  let t =
    {
      emu;
      interval_us;
      ticks = 0;
      tid = None;
      stop = false;
      base_priority = 16;
      min_priority = 2;
    }
  in
  match
    App_kernel.spawn_internal emu.Emulator.ak ~priority:28 ~lock:true
      (Hw.Exec.unit_body (body t))
  with
  | Ok tid ->
    t.tid <- Some tid;
    Ok t
  | Error e -> Error e

let stop t = t.stop <- true
let ticks t = t.ticks
