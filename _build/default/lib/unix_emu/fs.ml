(* A small block file system for the UNIX emulator.

   Section 2.3: process state like "an open file table [is] not supported
   by the Cache Kernel, and thus [is] stored only in the application
   kernel."  This is that part of the emulator: files are block lists on
   the backing-store disk, reads and writes move through disk latency
   (blocking the calling thread on an I/O-completion signal), and exec
   loads program images from here.

   The name table and per-file block lists are emulator (user-space) data;
   only the blocks themselves live on the simulated disk. *)

open Cachekernel

type file = {
  fname : string;
  mutable blocks : int array; (* block per page-sized extent *)
  mutable size : int; (* bytes *)
}

type t = {
  inst : Instance.t;
  disk : Hw.Disk.t;
  files : (string, file) Hashtbl.t;
  mutable next_token : int;
  mutable reads : int;
  mutable writes : int;
}

let create ~inst ~disk =
  { inst; disk; files = Hashtbl.create 32; next_token = 0; reads = 0; writes = 0 }

let lookup t name = Hashtbl.find_opt t.files name
let exists t name = Hashtbl.mem t.files name
let size f = f.size

(** Create (or truncate) a file. *)
let create_file t name =
  let f = { fname = name; blocks = [||]; size = 0 } in
  Hashtbl.replace t.files name f;
  f

let block_of t f index =
  while Array.length f.blocks <= index do
    f.blocks <- Array.append f.blocks [| Hw.Disk.alloc_block t.disk |]
  done;
  f.blocks.(index)

(** Host-context write (boot-time population, e.g. program images). *)
let write_now t f ~offset data =
  let len = Bytes.length data in
  let rec loop off =
    if off < len then begin
      let pos = offset + off in
      let bidx = pos / Hw.Addr.page_size in
      let in_block = pos mod Hw.Addr.page_size in
      let chunk = min (len - off) (Hw.Addr.page_size - in_block) in
      let block = block_of t f bidx in
      let page = Hw.Disk.read_now (t.disk) ~block in
      Bytes.blit data off page in_block chunk;
      Hw.Disk.write_now (t.disk) ~block page;
      loop (off + chunk)
    end
  in
  loop 0;
  f.size <- max f.size (offset + len)

(* Blocking I/O from a syscall-handler frame: wait on a completion token. *)
let fs_token_base = 0x7A000000

let block_for_io t ~thread (start : done_:(unit -> unit) -> unit) =
  t.next_token <- t.next_token + 1;
  let token = fs_token_base + (t.next_token * 4) in
  start ~done_:(fun () ->
      match Instance.find_thread t.inst thread with
      | Some th -> Signals.post_signal t.inst th ~va:token
      | None -> ());
  let rec wait () =
    match Hw.Exec.trap Api.Ck_wait_signal with
    | Api.Ck_signal va when va = token -> ()
    | _ -> wait ()
  in
  wait ()

(** (handler context) Read up to [len] bytes at [offset]; blocks the
    calling thread through the disk latency of each extent touched. *)
let read t f ~thread ~offset ~len =
  t.reads <- t.reads + 1;
  let len = max 0 (min len (f.size - offset)) in
  if len = 0 then Bytes.empty
  else begin
    let out = Bytes.create len in
    let rec loop off =
      if off < len then begin
        let pos = offset + off in
        let bidx = pos / Hw.Addr.page_size in
        let in_block = pos mod Hw.Addr.page_size in
        let chunk = min (len - off) (Hw.Addr.page_size - in_block) in
        let block = block_of t f bidx in
        block_for_io t ~thread (fun ~done_ ->
            Hw.Disk.read (t.disk) ~block (fun page ->
                Bytes.blit page in_block out off chunk;
                done_ ()));
        loop (off + chunk)
      end
    in
    loop 0;
    out
  end

(** (handler context) Write [data] at [offset], blocking per extent. *)
let write t f ~thread ~offset data =
  t.writes <- t.writes + 1;
  let len = Bytes.length data in
  let rec loop off =
    if off < len then begin
      let pos = offset + off in
      let bidx = pos / Hw.Addr.page_size in
      let in_block = pos mod Hw.Addr.page_size in
      let chunk = min (len - off) (Hw.Addr.page_size - in_block) in
      let block = block_of t f bidx in
      block_for_io t ~thread (fun ~done_ ->
          Hw.Disk.read (t.disk) ~block (fun page ->
              Bytes.blit data off page in_block chunk;
              Hw.Disk.write (t.disk) ~block page (fun () ->
                  done_ ())));
      loop (off + chunk)
    end
  in
  loop 0;
  f.size <- max f.size (offset + len)

let ls t = Hashtbl.fold (fun name f acc -> (name, f.size) :: acc) t.files []
let reads t = t.reads
let writes t = t.writes
