(* UNIX system-call vocabulary.

   A UNIX process is a simulated thread running in its own address space;
   it makes "system calls" by executing a trap instruction, which the Cache
   Kernel forwards to the emulator (section 2.3's trap forwarding).  This
   module defines the trap payloads and the libc-like stubs programs call.

   One substitution from real UNIX, recorded in DESIGN.md: [spawn] is
   fork+exec combined.  Duplicating a running thread would require copying
   its one-shot continuation, which the execution substrate cannot do; a
   spawned child gets a fresh program but inherits the parent's data and
   stack segments copy-on-write, which preserves everything the memory
   experiments exercise. *)

(** A program image: what exec would load from a file. *)
type program = {
  name : string;
  main : unit -> int; (* returns the exit code *)
  text_pages : int; (* size of the program image *)
  data_pages : int;
}

let program ?(text_pages = 4) ?(data_pages = 16) name main =
  { name; main; text_pages; data_pages }

type Hw.Exec.payload +=
  | Sys_getpid
  | Sys_getppid
  | Sys_spawn of program * bool (* inherit data copy-on-write? *)
  | Sys_exit of int
  | Sys_wait
  | Sys_sbrk of int (* grow the data region by n bytes *)
  | Sys_sleep of string (* block on a named event *)
  | Sys_wakeup of string (* wake all sleepers on the event *)
  | Sys_write of string (* console output *)
  | Sys_kill of int * int (* pid, signal *)
  | Sys_nice of int
  (* files and pipes: the open file table lives in the emulator only *)
  | Sys_creat of string
  | Sys_open of string
  | Sys_close of int
  | Sys_read_file of int * int (* fd, length *)
  | Sys_write_file of int * string
  | Sys_pipe
  (* replies *)
  | Ret_int of int
  | Ret_pair of int * int
  | Ret_unit
  | Ret_str of string
  | Ret_would_block (* the emulator put us to sleep; retry after wakeup *)
  | Ret_error of string

let sigkill = 9
let sigsegv = 11

(* -- Stubs: the "libc" programs link against -- *)

let getpid () =
  match Hw.Exec.trap Sys_getpid with Ret_int pid -> pid | _ -> -1

let getppid () =
  match Hw.Exec.trap Sys_getppid with Ret_int pid -> pid | _ -> -1

(** Start [prog] as a child process.  [inherit_memory] shares the parent's
    data segment copy-on-write, as fork would. *)
let spawn ?(inherit_memory = false) prog =
  match Hw.Exec.trap (Sys_spawn (prog, inherit_memory)) with
  | Ret_int pid -> pid
  | _ -> -1

(** Terminate the calling process. *)
let exit code =
  ignore (Hw.Exec.trap (Sys_exit code));
  (* the emulator has reaped our process state; stop executing *)
  ignore (Hw.Exec.trap Cachekernel.Api.Ck_exit);
  assert false

(** Wait for a child to exit: returns (pid, exit code). *)
let rec wait () =
  match Hw.Exec.trap Sys_wait with
  | Ret_pair (pid, code) -> (pid, code)
  | Ret_would_block -> wait () (* we slept; a wakeup reloaded us: retry *)
  | Ret_error _ -> (-1, -1)
  | _ -> (-1, -1)

(** Grow the data region; returns the previous break. *)
let sbrk bytes =
  match Hw.Exec.trap (Sys_sbrk bytes) with Ret_int brk -> brk | _ -> -1

(** Sleep on a named event until somebody calls {!wakeup} on it. *)
let rec sleep event =
  match Hw.Exec.trap (Sys_sleep event) with
  | Ret_would_block ->
    (* The emulator unloaded us; being re-dispatched means the wakeup
       arrived.  The retried trap confirms and returns. *)
    sleep event
  | _ -> ()

let wakeup event = ignore (Hw.Exec.trap (Sys_wakeup event))
let write s = ignore (Hw.Exec.trap (Sys_write s))
let kill pid signal = ignore (Hw.Exec.trap (Sys_kill (pid, signal)))
let nice n = ignore (Hw.Exec.trap (Sys_nice n))
let yield () = ignore (Hw.Exec.trap Cachekernel.Api.Ck_yield)

(* -- files and pipes -- *)

let creat name =
  match Hw.Exec.trap (Sys_creat name) with Ret_int fd -> fd | _ -> -1

let open_file name =
  match Hw.Exec.trap (Sys_open name) with Ret_int fd -> fd | _ -> -1

let close fd = ignore (Hw.Exec.trap (Sys_close fd))

(** Read up to [len] bytes from [fd]; pipe reads sleep until data. *)
let rec read_file fd len =
  match Hw.Exec.trap (Sys_read_file (fd, len)) with
  | Ret_str s -> s
  | Ret_would_block -> read_file fd len (* slept; a writer woke us: retry *)
  | _ -> ""

let write_file fd s =
  match Hw.Exec.trap (Sys_write_file (fd, s)) with Ret_int n -> n | _ -> -1

(** Create a pipe: (read fd, write fd). *)
let pipe () =
  match Hw.Exec.trap Sys_pipe with Ret_pair (r, w) -> (r, w) | _ -> (-1, -1)
