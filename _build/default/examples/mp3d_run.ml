(* The MP3D wind-tunnel simulation kernel (sections 3, 5.2), runnable with
   either particle placement policy.

   Run with: dune exec examples/mp3d_run.exe -- --particles 16384 --both *)

open Cmdliner

let run particles cells steps placement both paging =
  let run_one placement =
    let inst = Workload.Setup.instance ~cpus:4 () in
    let ak = Workload.Setup.first_kernel inst in
    let sim =
      match Sim_kernel.Mp3d.create ak ~particles ~cells ~placement () with
      | Ok s -> s
      | Error e -> Fmt.failwith "mp3d: %a" Cachekernel.Api.pp_error e
    in
    let r = Sim_kernel.Mp3d.run sim ~steps () in
    Fmt.pr "%a@." Sim_kernel.Mp3d.pp_report r;
    r
  in
  if both then begin
    let s = run_one Sim_kernel.Mp3d.Scattered in
    let c = run_one Sim_kernel.Mp3d.Clustered in
    Fmt.pr "degradation from scattering: %.1f%% (paper: up to 25%%)@."
      (100.0
      *. (s.Sim_kernel.Mp3d.us_per_step -. c.Sim_kernel.Mp3d.us_per_step)
      /. c.Sim_kernel.Mp3d.us_per_step)
  end
  else
    ignore
      (run_one
         (match placement with
         | "scattered" -> Sim_kernel.Mp3d.Scattered
         | _ -> Sim_kernel.Mp3d.Clustered));
  if paging then begin
    Fmt.pr "@.application-controlled paging (constrained frames):@.";
    let p = Workload.Locality.app_paging_compare ~particles:(min particles 8192) () in
    Fmt.pr "  FIFO: %d page-ins (%.0f us); app policy: %d page-ins (%.0f us)@."
      p.Workload.Locality.fifo_page_ins p.Workload.Locality.fifo_us
      p.Workload.Locality.app_policy_page_ins p.Workload.Locality.app_policy_us
  end

let particles =
  Arg.(value & opt int 16384 & info [ "particles" ] ~doc:"Number of particles.")

let cells = Arg.(value & opt int 64 & info [ "cells" ] ~doc:"Number of grid cells.")
let steps = Arg.(value & opt int 3 & info [ "steps" ] ~doc:"Simulation steps.")

let placement =
  Arg.(
    value
    & opt (enum [ ("scattered", "scattered"); ("clustered", "clustered") ]) "clustered"
    & info [ "placement" ] ~doc:"Particle placement policy.")

let both =
  Arg.(value & flag & info [ "both" ] ~doc:"Run both placements and report degradation.")

let paging =
  Arg.(
    value & flag
    & info [ "paging" ] ~doc:"Also run the application-controlled paging comparison.")

let cmd =
  Cmd.v
    (Cmd.info "mp3d_run" ~doc:"MP3D particle-in-cell simulation on the Cache Kernel")
    Term.(const run $ particles $ cells $ steps $ placement $ both $ paging)

let () = Stdlib.exit (Cmd.eval cmd)
