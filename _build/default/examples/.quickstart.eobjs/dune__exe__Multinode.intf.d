examples/multinode.mli:
