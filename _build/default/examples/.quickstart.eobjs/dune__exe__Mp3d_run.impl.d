examples/mp3d_run.ml: Arg Cachekernel Cmd Cmdliner Fmt Sim_kernel Stdlib Term Workload
