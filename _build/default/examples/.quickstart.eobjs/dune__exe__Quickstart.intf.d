examples/quickstart.mli:
