examples/multinode.ml: Aklib Api Array Cachekernel Dump Engine Fmt Hw Instance List Option Srm Workload
