examples/unix_session.ml: Api Cachekernel Emulator Engine Fmt Fun Hw Instance List Logs Printf Process Sched Stats String Syscall Unix_emu
