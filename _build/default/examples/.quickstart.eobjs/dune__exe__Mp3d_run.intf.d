examples/mp3d_run.mli:
