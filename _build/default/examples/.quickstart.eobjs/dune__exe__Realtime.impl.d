examples/realtime.ml: Aklib Api App_kernel Cachekernel Engine Fmt Hw Instance List Signals Srm Stats Thread_lib Workload
