examples/unix_session.mli:
