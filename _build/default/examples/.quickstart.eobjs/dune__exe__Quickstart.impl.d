examples/quickstart.ml: Aklib Api App_kernel Cachekernel Channel Dump Engine Fmt Fun Hw Instance List Region Segment_mgr Stats Thread_lib Trace
