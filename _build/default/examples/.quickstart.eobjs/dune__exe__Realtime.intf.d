examples/realtime.mli:
