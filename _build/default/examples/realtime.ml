(* Real-time embedded configuration (sections 3, 4.3).

   A single application kernel runs as the first kernel with full control:
   a real-time control thread is locked in the Cache Kernel at high
   priority and must meet a periodic deadline while a batch kernel launched
   by the resource manager tries to monopolise the machine.  The priority
   cap imposed on the batch kernel (set_max_priority) and time-sliced
   scheduling keep the real-time latency stable.

   Run with: dune exec examples/realtime.exe *)

open Cachekernel
open Aklib

let ok = function Ok v -> v | Error e -> Fmt.failwith "api error: %a" Api.pp_error e

let period_us = 5_000.0
let iterations = 40

let () =
  let inst = Workload.Setup.instance ~cpus:1 () in
  let srm = ok (Srm.Manager.boot inst ()) in

  (* The batch kernel: compute-bound, would love priority 31. *)
  let batch, batch_spec = App_kernel.prepare inst ~name:"batch" ~max_priority:12 () in
  let _launched =
    ok (Srm.Manager.launch srm (batch, batch_spec) ~group_count:4 ~cpu_percent:80 ())
  in
  let spin () =
    let rec loop () =
      Hw.Exec.compute 4000;
      loop ()
    in
    loop ()
  in
  ignore (ok (App_kernel.spawn_internal batch ~priority:12 (Hw.Exec.unit_body spin)));

  (* The real-time thread lives in the SRM's kernel (the "first kernel has
     full control" single-application configuration): locked, priority 30,
     woken by a periodic timer signal. *)
  let latencies = ref [] in
  let timer_va = 0x7C000000 in
  let rt_tid = ref None in
  let rt_body () =
    for _ = 1 to iterations do
      (* arm the next period *)
      let due =
        Hw.Cost.us_of_cycles (Hw.Mpm.now inst.Instance.node) +. period_us
      in
      Hw.Mpm.after inst.Instance.node ~delay:(Hw.Cost.cycles_of_us period_us) (fun () ->
          match !rt_tid with
          | Some oid -> (
            match Instance.find_thread inst oid with
            | Some th -> Signals.post_signal inst th ~va:timer_va
            | None -> ())
          | None -> ());
      let rec await () =
        match Hw.Exec.trap Api.Ck_wait_signal with
        | Api.Ck_signal va when va = timer_va -> ()
        | _ -> await ()
      in
      await ();
      let woke = Hw.Exec.time_us () in
      latencies := (woke -. due) :: !latencies;
      (* the control computation *)
      Hw.Exec.compute 2000
    done
  in
  let tid =
    ok (App_kernel.spawn_internal srm.Srm.Manager.ak ~priority:30 ~lock:true
          (Hw.Exec.unit_body rt_body))
  in
  rt_tid := Thread_lib.oid_of srm.Srm.Manager.ak.App_kernel.threads tid;
  ignore (Engine.run ~until_us:(period_us *. float_of_int (iterations + 4)) [| inst |]);
  let ls = List.rev !latencies in
  let n = List.length ls in
  let avg = List.fold_left ( +. ) 0.0 ls /. float_of_int (max 1 n) in
  let worst = List.fold_left max 0.0 ls in
  Fmt.pr "real-time periods completed: %d/%d@." n iterations;
  Fmt.pr "wakeup latency: avg %.1f us, worst %.1f us (period %.0f us)@." avg worst
    period_us;
  Fmt.pr "batch kernel interference contained: %s@."
    (if worst < period_us /. 2.0 then "yes" else "NO");
  let preempt = inst.Instance.stats.Stats.preemptions in
  Fmt.pr "preemptions of the batch spinner: %d@." preempt
