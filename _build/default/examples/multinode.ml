(* Multi-MPM operation (sections 3, 4; Figures 4 and 5).

   Three MPMs, each with its own Cache Kernel and SRM, connected by fiber
   channel.  The SRMs exchange load reports, co-schedule a parallel gang
   across all nodes at (nearly) the same instant, and when one MPM is
   halted the others keep running — the fault-containment argument for
   per-MPM kernel replication.

   Run with: dune exec examples/multinode.exe *)

open Cachekernel

let ok = function Ok v -> v | Error e -> Fmt.failwith "api error: %a" Api.pp_error e

let () =
  let net = Hw.Interconnect.create () in
  let make_node id load =
    let inst = Workload.Setup.instance ~node_id:id ~cpus:2 () in
    let srm = ok (Srm.Manager.boot inst ()) in
    let d = Srm.Distrib.start srm ~net in
    (* background load: [load] spinner threads *)
    let spin () =
      let rec loop () =
        Hw.Exec.compute 2500;
        ignore (Hw.Exec.trap Api.Ck_yield);
        loop ()
      in
      loop ()
    in
    for _ = 1 to load do
      ignore (ok (Aklib.App_kernel.spawn_internal srm.Srm.Manager.ak ~priority:6
                    (Hw.Exec.unit_body spin)))
    done;
    (* one gang member per node *)
    let gang_progress = ref 0 in
    let gang_body () =
      for _ = 1 to 50 do
        Hw.Exec.compute 3000;
        incr gang_progress;
        ignore (Hw.Exec.trap Api.Ck_yield)
      done
    in
    let tid =
      ok (Aklib.App_kernel.spawn_internal srm.Srm.Manager.ak ~priority:4
            (Hw.Exec.unit_body gang_body))
    in
    let oid =
      Option.get (Aklib.Thread_lib.oid_of srm.Srm.Manager.ak.Aklib.App_kernel.threads tid)
    in
    Srm.Distrib.register_gang d ~gang:42 [ oid ];
    (inst, srm, d, gang_progress)
  in
  let nodes = [ make_node 0 1; make_node 1 3; make_node 2 2 ] in
  List.iter
    (fun (_, _, d, _) ->
      List.iter (fun (i, _, _, _) -> Srm.Distrib.add_peer d (Instance.node_id i)) nodes)
    nodes;
  let insts = Array.of_list (List.map (fun (i, _, _, _) -> i) nodes) in

  (* Phase 1: load reporting and placement. *)
  ignore (Engine.run ~until_us:3_000.0 insts);
  List.iter (fun (_, _, d, _) -> Srm.Distrib.report_load d) nodes;
  ignore (Engine.run ~until_us:6_000.0 insts);
  let _, _, d0, _ = List.hd nodes in
  Fmt.pr "load reports at node 0: %a@."
    Fmt.(Dump.list (Dump.pair int int))
    (Srm.Distrib.load_reports d0);
  (match Srm.Distrib.least_loaded d0 with
  | Some n -> Fmt.pr "distributed scheduler would place new work on node %d@." n
  | None -> ());

  (* Phase 2: co-schedule the gang everywhere. *)
  Srm.Distrib.coschedule d0 ~gang:42 ~priority:20;
  ignore (Engine.run ~until_us:12_000.0 insts);
  List.iter
    (fun (i, _, d, _) ->
      List.iter
        (fun (g, t) -> Fmt.pr "node %d: gang %d raised at %.1f us@." (Instance.node_id i) g t)
        (Srm.Distrib.cosched_applied d))
    nodes;

  (* Phase 3: fault containment — halt node 1. *)
  let i1, _, _, _ = List.nth nodes 1 in
  i1.Instance.halted <- true;
  Hw.Interconnect.fail_node net 1;
  Fmt.pr "@.node 1 halted (MPM failure).@.";
  ignore (Engine.run ~until_us:30_000.0 insts);
  List.iter
    (fun (i, _, _, p) ->
      Fmt.pr "node %d: gang progress %d, local time %.1f us%s@." (Instance.node_id i) !p
        (Hw.Cost.us_of_cycles (Hw.Mpm.now i.Instance.node))
        (if i.Instance.halted then "  [halted]" else ""))
    nodes;
  Fmt.pr "node 1 frozen at its halt time while 0 and 2 progressed: fault contained.@.";
  Fmt.pr "packets dropped at the failed node: %d@." (Hw.Interconnect.dropped net)
