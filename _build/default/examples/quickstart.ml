(* Quickstart: boot a Cache Kernel, run a program under demand paging, and
   watch the Figure 2 fault-forwarding protocol in the event trace; then
   send a message between two address spaces over memory-based messaging.

   Run with: dune exec examples/quickstart.exe *)

open Cachekernel
open Aklib

let ok = function Ok v -> v | Error e -> Fmt.failwith "api error: %a" Api.pp_error e

let () =
  (* One MPM: 2 CPUs, 16 MB. *)
  let node = Hw.Mpm.create ~node_id:0 ~cpus:2 ~mem_size:(16 * 1024 * 1024) () in
  let inst = Instance.create node in
  Trace.enable inst.Instance.trace;

  (* Boot an application kernel as the first kernel, owning all memory. *)
  let groups = List.init (Instance.n_groups inst) Fun.id in
  let ak = ok (App_kernel.boot_first inst ~name:"quickstart" ~groups ()) in

  (* A user address space with a 16-page demand-paged region. *)
  let mgr = ak.App_kernel.mgr in
  let vsp = ok (Segment_mgr.create_space mgr) in
  let seg = Segment_mgr.create_segment mgr ~name:"heap" ~pages:16 in
  let base = 0x40000000 in
  Segment_mgr.attach_region mgr vsp
    (Region.v ~va_start:base ~pages:16 ~segment:seg ~seg_offset:0 ());

  (* The program: touch memory (faulting it in), compute, read it back. *)
  let result = ref 0 in
  let body () =
    for i = 0 to 15 do
      Hw.Exec.mem_write (base + (i * Hw.Addr.page_size)) (i * i)
    done;
    Hw.Exec.compute 10_000;
    for i = 0 to 15 do
      result := !result + Hw.Exec.mem_read (base + (i * Hw.Addr.page_size))
    done
  in
  ignore
    (ok
       (Thread_lib.spawn ak.App_kernel.threads ~space_tag:vsp.Segment_mgr.tag ~priority:8
          (Hw.Exec.unit_body body)));
  ignore (Engine.run [| inst |]);
  Fmt.pr "program result: %d (expected %d)@." !result
    (List.fold_left ( + ) 0 (List.init 16 (fun i -> i * i)));
  Fmt.pr "simulated time: %.1f us@." (Hw.Cost.us_of_cycles (Hw.Mpm.now node));

  (* The first few trace events show Figure 2's protocol. *)
  Fmt.pr "@.first fault, step by step (Figure 2):@.";
  let events = Trace.entries inst.Instance.trace in
  List.iteri
    (fun i e -> if i < 8 then Fmt.pr "  [%6.1fus] %a@."
        (Hw.Cost.us_of_cycles e.Trace.time) Trace.pp_event e.Trace.event)
    events;

  (* Memory-based messaging between two spaces. *)
  Fmt.pr "@.memory-based messaging:@.";
  let sp_tx = ok (Segment_mgr.create_space mgr) in
  let sp_rx = ok (Segment_mgr.create_space mgr) in
  let shared = Channel.create_shared mgr ~name:"demo" in
  let rx_tid = ref None in
  let signal_thread () =
    match !rx_tid with
    | Some id -> Thread_lib.oid_of ak.App_kernel.threads id
    | None -> None
  in
  let tx = Channel.attach mgr sp_tx shared ~va:0x50000000 ~role:`Sender in
  let rx = Channel.attach mgr sp_rx shared ~va:0x60000000 ~role:(`Receiver signal_thread) in
  let received = ref [] in
  rx_tid :=
    Some
      (ok
         (Thread_lib.spawn ak.App_kernel.threads ~space_tag:sp_rx.Segment_mgr.tag
            ~priority:10
            (Hw.Exec.unit_body (fun () ->
                 let _slot, words = Channel.recv rx in
                 received := words))));
  ignore
    (ok
       (Thread_lib.spawn ak.App_kernel.threads ~space_tag:sp_tx.Segment_mgr.tag
          ~priority:8
          (Hw.Exec.unit_body (fun () -> Channel.send tx ~slot:0 [ 1994; 11; 14 ]))));
  ignore (Engine.run [| inst |]);
  Fmt.pr "  received: %a@." Fmt.(Dump.list int) !received;
  Fmt.pr "  signals: %d fast-path, %d two-stage@." inst.Instance.stats.Stats.signals_fast
    inst.Instance.stats.Stats.signals_slow;
  Fmt.pr "@.Cache Kernel statistics:@.%a" Stats.pp inst.Instance.stats
