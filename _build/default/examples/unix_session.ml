(* A UNIX session on the Cache Kernel: the emulator runs an init process
   that spawns a pipeline of children — compute jobs, a sleeper woken by a
   sibling, a copy-on-write spawn — under the decay scheduler, then one
   process is swapped out and back.  Demonstrates that "stable" UNIX pids
   survive any number of Cache Kernel identifier changes.

   Run with: dune exec examples/unix_session.exe *)

open Cachekernel
open Unix_emu

let ok = function Ok v -> v | Error e -> Fmt.failwith "api error: %a" Api.pp_error e

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let node = Hw.Mpm.create ~node_id:0 ~cpus:2 ~mem_size:(32 * 1024 * 1024) () in
  let inst = Instance.create node in
  let groups = List.init (Instance.n_groups inst) Fun.id in
  let emu = ok (Emulator.boot inst ~groups) in

  let worker =
    Syscall.program "worker" (fun () ->
        let pid = Syscall.getpid () in
        Syscall.write (Printf.sprintf "[worker %d] computing\n" pid);
        (* touch some heap: demand paging in action *)
        let base = Process.data_base in
        for i = 0 to 7 do
          Hw.Exec.mem_write (base + (i * Hw.Addr.page_size)) (pid + i)
        done;
        Hw.Exec.compute 200_000;
        Syscall.write (Printf.sprintf "[worker %d] done\n" pid);
        pid)
  in
  let sleeper =
    Syscall.program "sleeper" (fun () ->
        Syscall.write "[sleeper] waiting for coffee\n";
        Syscall.sleep "coffee";
        Syscall.write "[sleeper] woken!\n";
        0)
  in
  let waker =
    Syscall.program "waker" (fun () ->
        Hw.Exec.compute 400_000;
        Syscall.write "[waker] wakeup(coffee)\n";
        Syscall.wakeup "coffee";
        0)
  in
  let cow_child =
    Syscall.program "cow-child" (fun () ->
        let inherited = Hw.Exec.mem_read Process.data_base in
        Syscall.write (Printf.sprintf "[cow] inherited %d, writing privately\n" inherited);
        Hw.Exec.mem_write Process.data_base 7777;
        0)
  in
  let init =
    Syscall.program "init" (fun () ->
        Syscall.write "[init] starting session\n";
        Hw.Exec.mem_write Process.data_base 1234;
        let pids =
          [
            Syscall.spawn worker;
            Syscall.spawn worker;
            Syscall.spawn sleeper;
            Syscall.spawn waker;
            Syscall.spawn ~inherit_memory:true cow_child;
          ]
        in
        Syscall.write
          (Printf.sprintf "[init] spawned %s\n"
             (String.concat ", " (List.map string_of_int pids)));
        List.iter
          (fun _ ->
            let pid, code = Syscall.wait () in
            Syscall.write (Printf.sprintf "[init] reaped %d (exit %d)\n" pid code))
          pids;
        let mine = Hw.Exec.mem_read Process.data_base in
        Syscall.write (Printf.sprintf "[init] my data still %d (COW held)\n" mine);
        0)
  in
  ignore (ok (Emulator.start_init emu init));
  let sched = ok (Sched.start emu ~interval_us:20_000.0) in
  ignore (Engine.run [| inst |]);
  Sched.stop sched;
  print_string (Emulator.console emu);
  Printf.printf "\n%d processes ran, %d syscalls, %d scheduler ticks\n"
    emu.Emulator.spawned emu.Emulator.syscalls (Sched.ticks sched);
  Printf.printf "thread loads=%d unloads=%d (sleep/wakeup = unload/reload)\n"
    inst.Instance.stats.Stats.threads.Stats.loads
    inst.Instance.stats.Stats.threads.Stats.unloads;
  Printf.printf "deferred copies performed by the Cache Kernel: %d\n"
    inst.Instance.stats.Stats.cow_copies;
  Printf.printf "simulated time: %.1f ms\n" (Hw.Cost.us_of_cycles (Hw.Mpm.now node) /. 1000.)
