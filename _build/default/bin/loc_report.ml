(* loc_report: the code-size inventory of experiment S1 (paper section 5.1).

   The paper's headline size claims:
     - Cache Kernel virtual memory code: a little under 1,500 lines,
       versus 13,087 (V kernel), 23,400 (Ultrix), 14,400 (SunOS),
       ~20,000 (Mach) for the same function;
     - whole Cache Kernel: 14,958 lines, ~40% of it PROM monitor/boot.

   This tool reports the equivalent inventory for this repository: lines of
   the supervisor (Cache Kernel) code, its virtual-memory subset, and the
   code that the caching model pushed *out* of the supervisor into
   application kernels — the structural claim being that the supervisor VM
   is small because policy lives outside. *)

let read_lines path =
  let ic = open_in path in
  let rec count n blank =
    match input_line ic with
    | line ->
      let t = String.trim line in
      if t = "" then count n (blank + 1) else count (n + 1) blank
    | exception End_of_file ->
      close_in ic;
      (n, blank)
  in
  count 0 0

let ml_files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
    |> List.map (Filename.concat dir)
  else []

let total dirs =
  List.fold_left
    (fun acc d ->
      List.fold_left (fun acc f -> acc + fst (read_lines f)) acc (ml_files d))
    0 dirs

let count_files dirs = List.fold_left (fun acc d -> acc + List.length (ml_files d)) 0 dirs

let root =
  (* run from the repo root or from _build *)
  if Sys.file_exists "lib" then "."
  else if Sys.file_exists "../../lib" then "../.."
  else "../../.."

let dir d = Filename.concat root d

let () =
  let supervisor = [ dir "lib/core" ] in
  let supervisor_vm_files =
    [ "mappings.ml"; "space_obj.ml"; "signals.ml"; "space_accounting.ml" ]
    |> List.map (fun f -> Filename.concat (dir "lib/core") f)
    |> List.filter Sys.file_exists
  in
  let vm_lines = List.fold_left (fun acc f -> acc + fst (read_lines f)) 0 supervisor_vm_files in
  let hw = [ dir "lib/hw" ] in
  let app_kernels = [ dir "lib/aklib"; dir "lib/unix_emu"; dir "lib/srm"; dir "lib/sim_kernel" ] in
  let baselines = [ dir "lib/baseline" ] in
  let harness = [ dir "lib/workload"; dir "bench"; dir "test"; dir "examples"; dir "bin" ] in
  Printf.printf "S1. Code-size inventory (non-blank lines of OCaml)\n";
  Printf.printf "---------------------------------------------------\n";
  Printf.printf "  %-44s %6d lines (%d files)\n" "Cache Kernel (supervisor, lib/core)"
    (total supervisor) (count_files supervisor);
  Printf.printf "  %-44s %6d lines\n" "  of which virtual-memory mechanism" vm_lines;
  Printf.printf "  %-44s %6d lines (%d files)\n" "hardware substrate (lib/hw)" (total hw)
    (count_files hw);
  Printf.printf "  %-44s %6d lines (%d files)\n"
    "application kernels (aklib/unix/srm/sim)" (total app_kernels)
    (count_files app_kernels);
  Printf.printf "  %-44s %6d lines (%d files)\n" "baseline comparators" (total baselines)
    (count_files baselines);
  Printf.printf "  %-44s %6d lines (%d files)\n" "tests, benches, examples, tools"
    (total harness) (count_files harness);
  Printf.printf "\n";
  Printf.printf "  paper: Cache Kernel VM < 1,500 lines vs 13,087 (V), 23,400 (Ultrix),\n";
  Printf.printf "  14,400 (SunOS), ~20,000 (Mach); whole Cache Kernel 14,958 lines.\n";
  Printf.printf "  The structural claim holds here the same way: the supervisor's VM\n";
  Printf.printf "  mechanism is a small fraction of the policy code that the caching\n";
  Printf.printf "  model evicts into user-mode application kernels.\n"
